#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace hazy::storage {

PageHandle::PageHandle(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& o) noexcept : pool_(o.pool_), frame_(o.frame_) {
  o.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
  }
  return *this;
}

char* PageHandle::data() {
  HAZY_DCHECK(valid());
  return pool_->frames_[frame_].data.get();
}

const char* PageHandle::data() const {
  HAZY_DCHECK(valid());
  return pool_->frames_[frame_].data.get();
}

uint32_t PageHandle::page_id() const {
  HAZY_DCHECK(valid());
  return pool_->frames_[frame_].page_id;
}

void PageHandle::MarkDirty() {
  HAZY_DCHECK(valid());
  pool_->MarkDirtyFrame(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  if (capacity == 0) capacity = 1;
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  // Frame buffers are allocated lazily in GetVictim: a large pool must not
  // cost capacity * kPageSize of zeroed RSS up front (it dominated
  // time-to-first-query for recovery before it was deferred).
  for (size_t i = 0; i < capacity; ++i) {
    free_frames_.push_back(capacity - 1 - i);
  }
}

void BufferPool::MarkDirtyFrame(size_t f) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[f].dirty = true;
}

Status BufferPool::LogBeforeImage(Frame& frame) {
  if (wal_ == nullptr || wal_->PageLogged(frame.page_id)) return Status::OK();
  // First write-back of this page since the checkpoint: the frame holds the
  // mutated image, but the file still holds the checkpoint-time content —
  // nothing may overwrite it before this record exists. Log what is on disk.
  static thread_local std::unique_ptr<char[]> scratch;
  if (!scratch) scratch = std::unique_ptr<char[]>(new char[kPageSize]);
  HAZY_RETURN_NOT_OK(pager_->Read(frame.page_id, scratch.get()));
  HAZY_ASSIGN_OR_RETURN(uint64_t lsn,
                        wal_->AppendBeforeImage(frame.page_id, scratch.get()));
  frame.lsn = lsn;
  return Status::OK();
}

Status BufferPool::WriteBack(Frame& frame) {
  HAZY_RETURN_NOT_OK(LogBeforeImage(frame));
  if (wal_ != nullptr) {
    // The write-ahead rule: the record protecting this page must be durable
    // before the page image may replace the checkpoint-time content.
    HAZY_RETURN_NOT_OK(wal_->EnsureDurable(frame.lsn));
    SetPageLsn(frame.data.get(), frame.lsn);
  }
  HAZY_RETURN_NOT_OK(pager_->Write(frame.page_id, frame.data.get()));
  ++stats_.dirty_writebacks;
  frame.dirty = false;
  return Status::OK();
}

StatusOr<PageHandle> BufferPool::Fetch(uint32_t page_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = page_table_.find(page_id);
    if (it != page_table_.end()) {
      Frame& frame = frames_[it->second];
      if (frame.io_pending) {
        // Another thread is faulting this page in; wait for its read to
        // settle and re-check (a failed read evaporates the entry).
        io_cv_.wait(lock);
        continue;
      }
      ++stats_.hits;
      if (frame.in_lru) {
        lru_.erase(frame.lru_it);
        frame.in_lru = false;
      }
      ++frame.pin_count;
      return PageHandle(this, it->second);
    }
    ++stats_.misses;
    HAZY_ASSIGN_OR_RETURN(size_t f, GetVictim());
    Frame& frame = frames_[f];
    frame.page_id = page_id;
    frame.dirty = false;
    frame.lsn = 0;
    frame.pin_count = 1;  // pinned: cannot be victimized while the read runs
    frame.io_pending = true;
    page_table_[page_id] = f;
    // Drop the mutex for the read so misses on distinct pages overlap their
    // disk I/O (out-of-core striped scans fault in parallel). The frame is
    // invisible to eviction (pinned) and fetchers of the same page wait on
    // io_pending.
    char* dest = frame.data.get();
    lock.unlock();
    Status s = pager_->Read(page_id, dest);
    lock.lock();
    frame.io_pending = false;
    if (!s.ok()) {
      page_table_.erase(page_id);
      frame.page_id = kInvalidPageId;
      frame.pin_count = 0;
      free_frames_.push_back(f);
      io_cv_.notify_all();
      return s;
    }
    io_cv_.notify_all();
    return PageHandle(this, f);
  }
}

StatusOr<PageHandle> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mu_);
  HAZY_ASSIGN_OR_RETURN(uint32_t page_id, pager_->Allocate());
  HAZY_ASSIGN_OR_RETURN(size_t f, GetVictim());
  Frame& frame = frames_[f];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = page_id;
  frame.dirty = true;  // must reach the file even if never touched again
  frame.lsn = 0;
  frame.pin_count = 1;
  page_table_[page_id] = f;
  // A page allocated after the checkpoint has no checkpoint-time content to
  // preserve: exempt it from before-image logging for this epoch (recovery's
  // mark-and-sweep reclaims it instead).
  if (wal_ != nullptr) wal_->NotePageAllocated(page_id);
  return PageHandle(this, f);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      HAZY_RETURN_NOT_OK(WriteBack(frame));
    }
  }
  return Status::OK();
}

void BufferPool::FreePage(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    HAZY_CHECK(frame.pin_count == 0) << "freeing pinned page " << page_id;
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    free_frames_.push_back(it->second);
    frame.page_id = kInvalidPageId;
    frame.dirty = false;
    page_table_.erase(it);
  }
  pager_->Free(page_id);
}

void BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t f = 0; f < frames_.size(); ++f) {
    Frame& frame = frames_[f];
    if (frame.page_id == kInvalidPageId || frame.pin_count > 0) continue;
    if (frame.dirty) {
      HAZY_CHECK_OK(WriteBack(frame));
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    page_table_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    free_frames_.push_back(f);
  }
}

void BufferPool::Unpin(size_t f) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[f];
  HAZY_CHECK(frame.pin_count > 0) << "unpin of unpinned frame";
  if (--frame.pin_count == 0) {
    lru_.push_front(f);
    frame.lru_it = lru_.begin();
    frame.in_lru = true;
  }
}

StatusOr<size_t> BufferPool::GetVictim() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    if (!frames_[f].data) {
      // First use of this frame; uninitialized — every caller either reads
      // the page over it or formats it (New zeroes, heap/tree Init()s).
      frames_[f].data = std::unique_ptr<char[]>(new char[kPageSize]);
    }
    return f;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        StrFormat("buffer pool exhausted: all %zu frames pinned", frames_.size()));
  }
  size_t f = lru_.back();
  lru_.pop_back();
  Frame& frame = frames_[f];
  frame.in_lru = false;
  ++stats_.evictions;
  if (frame.dirty) {
    HAZY_RETURN_NOT_OK(WriteBack(frame));
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  frame.dirty = false;
  return f;
}

}  // namespace hazy::storage
