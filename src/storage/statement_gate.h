// Statement-level reader/writer gate between foreground mutations and the
// background checkpointer.
//
// The engine's write side is single-threaded by contract, but the checkpoint
// daemon (persist/checkpoint_daemon.h) introduced a second thread that must
// observe the database at a statement boundary: a checkpoint serializes view
// state and snapshots heap metadata, which must not interleave with a
// half-applied INSERT. Every mutating statement entry point holds the gate
// shared (statements never block each other — the engine contract already
// serializes them); a checkpoint holds it exclusive for its commit section.
//
// The exclusive owner is recorded so work the checkpoint itself performs
// through the same entry points (system-table row writes, WAL bookkeeping)
// re-enters without self-deadlock — a shared acquisition from the exclusive
// owner's thread is a no-op.

#ifndef HAZY_STORAGE_STATEMENT_GATE_H_
#define HAZY_STORAGE_STATEMENT_GATE_H_

#include <atomic>
#include <shared_mutex>
#include <thread>

#include "obs/trace.h"

namespace hazy::storage {

class StatementGate {
 public:
  StatementGate() = default;
  StatementGate(const StatementGate&) = delete;
  StatementGate& operator=(const StatementGate&) = delete;

  /// Shared hold for the duration of one statement. Tolerates a null gate
  /// (tables used without an engine) and re-entry from the exclusive owner.
  class SharedGuard {
   public:
    explicit SharedGuard(StatementGate* gate) : gate_(gate) {
      if (gate_ != nullptr &&
          gate_->exclusive_owner_.load(std::memory_order_relaxed) !=
              std::this_thread::get_id()) {
        // Time spent here is a statement stalled behind a checkpoint commit
        // section — the ROADMAP item-2 (MVCC-lite) justification metric.
        const int64_t t0 = NowNanos();
        gate_->mu_.lock_shared();
        RecordWait(/*exclusive=*/false, t0);
        locked_ = true;
      }
    }
    ~SharedGuard() {
      if (locked_) gate_->mu_.unlock_shared();
    }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    StatementGate* gate_;
    bool locked_ = false;
  };

  /// Exclusive hold for a checkpoint's commit section.
  class ExclusiveGuard {
   public:
    explicit ExclusiveGuard(StatementGate* gate) : gate_(gate) {
      if (gate_ != nullptr) {
        // The exclusive wait is the checkpoint daemon stalled behind live
        // statements (the dual starvation signal).
        const int64_t t0 = NowNanos();
        gate_->mu_.lock();
        RecordWait(/*exclusive=*/true, t0);
        gate_->exclusive_owner_.store(std::this_thread::get_id(),
                                      std::memory_order_relaxed);
      }
    }
    ~ExclusiveGuard() {
      if (gate_ != nullptr) {
        gate_->exclusive_owner_.store(std::thread::id{}, std::memory_order_relaxed);
        gate_->mu_.unlock();
      }
    }
    ExclusiveGuard(const ExclusiveGuard&) = delete;
    ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

   private:
    StatementGate* gate_;
  };

 private:
  // Always-on wait accounting: the registry histogram fills even for gate
  // holders with no trace installed (the checkpoint daemon thread), and the
  // current statement's trace — when there is one — gets the event too.
  static void RecordWait(bool exclusive, int64_t start_ns) {
    static obs::Histogram* shared_hist = obs::Registry::Global().GetHistogram(
        "hazy_gate_wait_us", "mode=\"shared\"");
    static obs::Histogram* exclusive_hist =
        obs::Registry::Global().GetHistogram("hazy_gate_wait_us",
                                             "mode=\"exclusive\"");
    const uint64_t dur_ns = static_cast<uint64_t>(NowNanos() - start_ns);
    (exclusive ? exclusive_hist : shared_hist)
        ->Observe(static_cast<double>(dur_ns) / 1000.0);
    obs::TraceContext* trace = obs::CurrentTrace();
    if (trace != nullptr) trace->AddEvent(obs::SpanKind::kGateWait, dur_ns);
  }

  std::shared_mutex mu_;
  std::atomic<std::thread::id> exclusive_owner_{};
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_STATEMENT_GATE_H_
