// Statement-level reader/writer gate between foreground mutations and the
// background checkpointer.
//
// Mutating statement entry points hold the gate shared (statements never
// block each other — the engine contract already serializes them); a
// checkpoint holds it exclusive for its commit section. Read statements do
// NOT take this gate at all: they pin an epoch snapshot (core/epoch.h) and
// scan immutable state, so with MVCC-lite the gate is writers-vs-checkpoint
// only.
//
// Fairness: the PR 5 implementation sat on std::shared_mutex, whose
// acquisition order is unspecified — under a saturating shared stream the
// checkpoint's exclusive acquisition could starve indefinitely (the hazard
// flagged in PR 5). This implementation blocks NEW shared entrants while an
// exclusive acquisition is pending, so the checkpoint gets in as soon as
// the in-flight statements drain. Two re-entry paths keep that safe:
//
//   - The exclusive owner is recorded, so work the checkpoint itself
//     performs through the same entry points (system-table row writes, WAL
//     bookkeeping) re-enters shared as a no-op.
//   - A thread already holding the gate shared re-enters shared without
//     waiting (nested table/trigger entry points inside one statement);
//     otherwise the no-barging rule would deadlock the statement against
//     the waiting checkpoint.
//
// Thread-safety analysis: the gate itself is a CAPABILITY and the guards
// are SCOPED_CAPABILITYs acquiring it shared/exclusive, so clang tracks
// gate holds across scopes (e.g. a function can REQUIRES(gate) its
// checkpoint-commit helpers). The owner/nested re-entry paths are RUNTIME
// conditions — the static annotation deliberately claims the hold in every
// case, which is sound: re-entry means the capability is already held.
// The internal mu_ protecting the wait state is an ordinary checked mutex.

#ifndef HAZY_STORAGE_STATEMENT_GATE_H_
#define HAZY_STORAGE_STATEMENT_GATE_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace hazy::storage {

class CAPABILITY("statement_gate") StatementGate {
 public:
  StatementGate() = default;
  StatementGate(const StatementGate&) = delete;
  StatementGate& operator=(const StatementGate&) = delete;

  /// Shared hold for the duration of one statement. Tolerates a null gate
  /// (tables used without an engine) and re-entry from the exclusive owner
  /// or from a thread already holding the gate shared.
  class SCOPED_CAPABILITY SharedGuard {
   public:
    explicit SharedGuard(StatementGate* gate) ACQUIRE_SHARED(gate)
        : gate_(gate) {
      if (gate_ == nullptr ||
          gate_->exclusive_owner_.load(std::memory_order_relaxed) ==
              std::this_thread::get_id()) {
        return;
      }
      int& depth = DepthMap()[gate_];
      if (depth > 0) {
        // Nested entry point inside a statement that already holds the
        // gate: piggyback on the outer hold (waiting here would deadlock
        // against a pending exclusive waiter).
        ++depth;
        held_ = true;
        return;
      }
      // Time spent here is a mutating statement stalled behind a checkpoint
      // commit section (read statements no longer take the gate at all).
      const int64_t t0 = NowNanos();
      {
        MutexLock lock(gate_->mu_);
        while (gate_->exclusive_active_ || gate_->exclusive_waiting_ != 0) {
          gate_->cv_.Wait(gate_->mu_);
        }
        ++gate_->active_shared_;
      }
      RecordWait(/*exclusive=*/false, t0);
      depth = 1;
      held_ = true;
    }
    ~SharedGuard() RELEASE() {
      if (!held_) return;
      auto& depths = DepthMap();
      auto it = depths.find(gate_);
      if (--it->second > 0) return;
      // Erase the slot, not just zero it: gates are destroyed and recreated
      // (VACUUM cycles), and a dead address must not pin a map entry for the
      // life of the thread.
      depths.erase(it);
      {
        MutexLock lock(gate_->mu_);
        --gate_->active_shared_;
      }
      gate_->cv_.NotifyAll();
    }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    StatementGate* gate_;
    bool held_ = false;
  };

  /// Exclusive hold for a checkpoint's commit section. Pending exclusive
  /// acquisition blocks new shared entrants (no starvation under a
  /// saturating statement stream).
  class SCOPED_CAPABILITY ExclusiveGuard {
   public:
    explicit ExclusiveGuard(StatementGate* gate) ACQUIRE(gate) : gate_(gate) {
      if (gate_ == nullptr) return;
      // The exclusive wait is the checkpoint stalled behind in-flight
      // statements (bounded: new ones queue behind us).
      const int64_t t0 = NowNanos();
      {
        MutexLock lock(gate_->mu_);
        ++gate_->exclusive_waiting_;
        while (gate_->exclusive_active_ || gate_->active_shared_ != 0) {
          gate_->cv_.Wait(gate_->mu_);
        }
        --gate_->exclusive_waiting_;
        gate_->exclusive_active_ = true;
      }
      RecordWait(/*exclusive=*/true, t0);
      gate_->exclusive_owner_.store(std::this_thread::get_id(),
                                    std::memory_order_relaxed);
    }
    ~ExclusiveGuard() RELEASE() {
      if (gate_ == nullptr) return;
      gate_->exclusive_owner_.store(std::thread::id{}, std::memory_order_relaxed);
      {
        MutexLock lock(gate_->mu_);
        gate_->exclusive_active_ = false;
      }
      gate_->cv_.NotifyAll();
    }
    ExclusiveGuard(const ExclusiveGuard&) = delete;
    ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

   private:
    StatementGate* gate_;
  };

 private:
  /// Per-thread shared-hold depths keyed by gate address (supports the
  /// nested re-entry path without a second mutex acquisition). Entries are
  /// erased when the outermost hold releases, so the map holds only the
  /// gates this thread is inside right now — never stale addresses.
  static std::unordered_map<const StatementGate*, int>& DepthMap() {
    static thread_local std::unordered_map<const StatementGate*, int> depths;
    return depths;
  }

  // Always-on wait accounting: the registry histogram fills even for gate
  // holders with no trace installed (the checkpoint daemon thread), and the
  // current statement's trace — when there is one — gets the event too.
  static void RecordWait(bool exclusive, int64_t start_ns) {
    static obs::Histogram* shared_hist = obs::Registry::Global().GetHistogram(
        "hazy_gate_wait_us", "mode=\"shared\"");
    static obs::Histogram* exclusive_hist =
        obs::Registry::Global().GetHistogram("hazy_gate_wait_us",
                                             "mode=\"exclusive\"");
    const uint64_t dur_ns = static_cast<uint64_t>(NowNanos() - start_ns);
    (exclusive ? exclusive_hist : shared_hist)
        ->Observe(static_cast<double>(dur_ns) / 1000.0);
    obs::TraceContext* trace = obs::CurrentTrace();
    if (trace != nullptr) trace->AddEvent(obs::SpanKind::kGateWait, dur_ns);
  }

  Mutex mu_;
  CondVar cv_;
  uint64_t active_shared_ GUARDED_BY(mu_) = 0;
  uint64_t exclusive_waiting_ GUARDED_BY(mu_) = 0;
  bool exclusive_active_ GUARDED_BY(mu_) = false;
  /// Lock-free: read on the shared fast path before touching mu_; written
  /// only by the exclusive owner transition under mu_.
  std::atomic<std::thread::id> exclusive_owner_{};
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_STATEMENT_GATE_H_
