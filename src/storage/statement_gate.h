// Statement-level reader/writer gate between foreground mutations and the
// background checkpointer.
//
// The engine's write side is single-threaded by contract, but the checkpoint
// daemon (persist/checkpoint_daemon.h) introduced a second thread that must
// observe the database at a statement boundary: a checkpoint serializes view
// state and snapshots heap metadata, which must not interleave with a
// half-applied INSERT. Every mutating statement entry point holds the gate
// shared (statements never block each other — the engine contract already
// serializes them); a checkpoint holds it exclusive for its commit section.
//
// The exclusive owner is recorded so work the checkpoint itself performs
// through the same entry points (system-table row writes, WAL bookkeeping)
// re-enters without self-deadlock — a shared acquisition from the exclusive
// owner's thread is a no-op.

#ifndef HAZY_STORAGE_STATEMENT_GATE_H_
#define HAZY_STORAGE_STATEMENT_GATE_H_

#include <atomic>
#include <shared_mutex>
#include <thread>

namespace hazy::storage {

class StatementGate {
 public:
  StatementGate() = default;
  StatementGate(const StatementGate&) = delete;
  StatementGate& operator=(const StatementGate&) = delete;

  /// Shared hold for the duration of one statement. Tolerates a null gate
  /// (tables used without an engine) and re-entry from the exclusive owner.
  class SharedGuard {
   public:
    explicit SharedGuard(StatementGate* gate) : gate_(gate) {
      if (gate_ != nullptr &&
          gate_->exclusive_owner_.load(std::memory_order_relaxed) !=
              std::this_thread::get_id()) {
        gate_->mu_.lock_shared();
        locked_ = true;
      }
    }
    ~SharedGuard() {
      if (locked_) gate_->mu_.unlock_shared();
    }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    StatementGate* gate_;
    bool locked_ = false;
  };

  /// Exclusive hold for a checkpoint's commit section.
  class ExclusiveGuard {
   public:
    explicit ExclusiveGuard(StatementGate* gate) : gate_(gate) {
      if (gate_ != nullptr) {
        gate_->mu_.lock();
        gate_->exclusive_owner_.store(std::this_thread::get_id(),
                                      std::memory_order_relaxed);
      }
    }
    ~ExclusiveGuard() {
      if (gate_ != nullptr) {
        gate_->exclusive_owner_.store(std::thread::id{}, std::memory_order_relaxed);
        gate_->mu_.unlock();
      }
    }
    ExclusiveGuard(const ExclusiveGuard&) = delete;
    ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

   private:
    StatementGate* gate_;
  };

 private:
  std::shared_mutex mu_;
  std::atomic<std::thread::id> exclusive_owner_{};
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_STATEMENT_GATE_H_
