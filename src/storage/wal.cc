#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "storage/coding.h"

namespace hazy::storage {

namespace {

// The bytes "HAZYWAL1" read as a little-endian u64.
constexpr uint64_t kWalMagic = 0x314C4157595A4148ull;
constexpr uint32_t kWalVersion = 1;
// Header: u64 magic, u32 version, u64 base epoch, u32 pad.
constexpr size_t kWalHeaderSize = 24;
// Record framing: u32 payload len, u8 type, u64 checksum.
constexpr size_t kRecordHeaderSize = 4 + 1 + 8;
// Sanity bound on one record. Logical records carry whole encoded rows
// (overflow-spilled rows run to megabytes), so the cap must be generous —
// the real torn-tail guards are the within-file-size bound and the
// checksum; this only stops a garbage length from driving a huge resize.
constexpr size_t kMaxPayload = 1u << 30;

uint64_t Fnv1a64(uint8_t type, std::string_view payload) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  mix(type);
  for (char c : payload) mix(static_cast<uint8_t>(c));
  return h;
}

}  // namespace

Wal::~Wal() {
  if (fd_ >= 0) Close().ok();
}

Status Wal::Open(const std::string& path, const WalOptions& options) {
  if (fd_ >= 0) return Status::InvalidArgument("wal already open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  options_ = options;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    fd_ = -1;
    return Status::IOError(StrFormat("lseek %s: %s", path.c_str(), std::strerror(errno)));
  }
  if (static_cast<size_t>(size) < kWalHeaderSize) {
    // Fresh (or torn-at-birth) log: write an empty epoch-0 header. The
    // database rebases it onto the real checkpoint epoch during Open.
    return Reset(0);
  }
  char hdr[kWalHeaderSize];
  if (::pread(fd, hdr, kWalHeaderSize, 0) != static_cast<ssize_t>(kWalHeaderSize)) {
    return Status::IOError("wal header read failed");
  }
  if (DecodeFixed64(hdr) != kWalMagic) {
    return Status::Corruption(StrFormat("%s is not a hazy WAL file", path.c_str()));
  }
  if (DecodeFixed32(hdr + 8) != kWalVersion) {
    return Status::NotSupported(
        StrFormat("unsupported WAL version %u", DecodeFixed32(hdr + 8)));
  }
  base_epoch_ = DecodeFixed64(hdr + 12);
  next_lsn_ = kWalHeaderSize;
  durable_lsn_ = kWalHeaderSize;
  return ScanExisting();
}

Status Wal::ScanExisting() {
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) return Status::IOError("wal lseek failed");

  // Pass 1: decode every intact record; stop at the first torn/corrupt one.
  std::vector<Record> valid;
  std::vector<uint64_t> ends;  // file offset just past each record
  uint64_t off = kWalHeaderSize;
  std::string buf;
  while (off + kRecordHeaderSize <= static_cast<uint64_t>(file_size)) {
    char rh[kRecordHeaderSize];
    if (::pread(fd_, rh, kRecordHeaderSize, static_cast<off_t>(off)) !=
        static_cast<ssize_t>(kRecordHeaderSize)) {
      break;
    }
    uint32_t len = DecodeFixed32(rh);
    uint8_t type = static_cast<uint8_t>(rh[4]);
    uint64_t checksum = DecodeFixed64(rh + 5);
    if (len > kMaxPayload || type < 1 || type > 4 ||
        off + kRecordHeaderSize + len > static_cast<uint64_t>(file_size)) {
      break;
    }
    buf.resize(len);
    if (len > 0 && ::pread(fd_, buf.data(), len, static_cast<off_t>(off + kRecordHeaderSize)) !=
                       static_cast<ssize_t>(len)) {
      break;
    }
    if (Fnv1a64(type, buf) != checksum) break;
    Record rec;
    rec.lsn = off;
    rec.type = static_cast<WalRecordType>(type);
    rec.payload = buf;
    valid.push_back(std::move(rec));
    off += kRecordHeaderSize + len;
    ends.push_back(off);
  }
  const uint64_t valid_end = ends.empty() ? kWalHeaderSize : ends.back();

  // Truncate only *invalid* bytes — a torn final write. That is always safe:
  // a torn before-image was never durable, so the write-ahead rule means its
  // page never reached the database file, and a torn logical/commit record
  // never acknowledged. Everything valid stays in place untouched.
  if (valid_end != static_cast<uint64_t>(file_size)) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      return Status::IOError(StrFormat("wal ftruncate: %s", std::strerror(errno)));
    }
  }
  next_lsn_ = valid_end;
  durable_lsn_ = valid_end;

  // Logical records after the last commit/abort marker belong to an
  // operation that never committed. They must not replay — and must not be
  // swept into the *next* operation's commit marker — but the before-images
  // interleaved with them still protect pages. Close the group with an
  // appended abort marker (crash-safe: nothing durable is destroyed; replay
  // treats abort as discard-group, so re-crashing here is idempotent).
  bool open_group = false;
  for (const Record& rec : valid) {
    if (rec.type == WalRecordType::kLogical) {
      open_group = true;
    } else if (rec.type == WalRecordType::kCommit ||
               rec.type == WalRecordType::kAbort) {
      open_group = false;
    }
  }
  if (open_group) {
    uint64_t lsn = 0;
    Record abort_rec;
    abort_rec.type = WalRecordType::kAbort;
    HAZY_RETURN_NOT_OK(AppendRecord(WalRecordType::kAbort, {}, &lsn));
    HAZY_RETURN_NOT_OK(Sync());
    abort_rec.lsn = lsn;
    valid.push_back(std::move(abort_rec));
  }

  records_ = std::move(valid);
  logged_pages_.clear();
  for (const Record& rec : records_) {
    if (rec.type == WalRecordType::kBeforeImage && rec.payload.size() >= 4) {
      logged_pages_.insert(DecodeFixed32(rec.payload.data()));
    }
  }
  return Status::OK();
}

Status Wal::Close() {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

Status Wal::WriteRaw(const char* data, size_t len) {
  size_t write_len = len;
  if (fault_hook_) {
    int action = fault_hook_("wal_append", kInvalidPageId);
    if (action == kFaultFail) return Status::IOError("injected fault in wal append");
    if (action >= 0) {
      write_len = std::min<size_t>(static_cast<size_t>(action), len);
      if (write_len > 0) {
        ::pwrite(fd_, data, write_len, static_cast<off_t>(next_lsn_));
      }
      return Status::IOError(
          StrFormat("injected torn wal append (%zu bytes)", write_len));
    }
  }
  ssize_t n = ::pwrite(fd_, data, len, static_cast<off_t>(next_lsn_));
  if (n != static_cast<ssize_t>(len)) {
    return Status::IOError(StrFormat("wal pwrite: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status Wal::AppendRecord(WalRecordType type, std::string_view payload, uint64_t* lsn) {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (payload.size() > kMaxPayload) {
    // Fail the statement rather than write a record recovery would reject.
    return Status::InvalidArgument("wal record payload too large");
  }
  std::string rec;
  rec.reserve(kRecordHeaderSize + payload.size());
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.push_back(static_cast<char>(type));
  PutFixed64(&rec, Fnv1a64(static_cast<uint8_t>(type), payload));
  rec.append(payload.data(), payload.size());
  HAZY_RETURN_NOT_OK(WriteRaw(rec.data(), rec.size()));
  *lsn = next_lsn_;
  next_lsn_ += rec.size();
  ++stats_.records;
  stats_.bytes += rec.size();
  return Status::OK();
}

StatusOr<uint64_t> Wal::AppendBeforeImage(uint32_t page_id, const char* page) {
  std::string payload;
  payload.reserve(4 + kPageSize);
  PutFixed32(&payload, page_id);
  payload.append(page, kPageSize);
  uint64_t lsn = 0;
  HAZY_RETURN_NOT_OK(AppendRecord(WalRecordType::kBeforeImage, payload, &lsn));
  logged_pages_.insert(page_id);
  ++stats_.before_images;
  return lsn;
}

Status Wal::AppendLogical(std::string_view payload) {
  if (logical_paused()) return Status::OK();
  uint64_t lsn = 0;
  HAZY_RETURN_NOT_OK(AppendRecord(WalRecordType::kLogical, payload, &lsn));
  group_dirty_ = true;
  return Status::OK();
}

Status Wal::Commit(bool batched) {
  uint64_t lsn = 0;
  std::string payload(1, batched ? '\1' : '\0');
  HAZY_RETURN_NOT_OK(AppendRecord(WalRecordType::kCommit, payload, &lsn));
  group_dirty_ = false;
  ++stats_.commits;
  switch (options_.sync_mode) {
    case WalOptions::SyncMode::kEveryCommit:
      return Sync();
    case WalOptions::SyncMode::kGroupCommit:
      if (++commits_since_sync_ >= options_.group_commit_interval) {
        return Sync();
      }
      return Status::OK();
    case WalOptions::SyncMode::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status Wal::AutoCommit() {
  if (logical_paused() || in_group_ || !group_dirty_) return Status::OK();
  return Commit(/*batched=*/false);
}

Status Wal::EndGroup() {
  in_group_ = false;
  if (!group_dirty_) return Status::OK();
  return Commit(/*batched=*/true);
}

Status Wal::EnsureDurable(uint64_t lsn) {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (lsn < durable_lsn_) return Status::OK();
  return Sync();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (fault_hook_ && fault_hook_("wal_sync", kInvalidPageId) != kFaultNone) {
    return Status::IOError("injected fault in wal sync");
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StrFormat("wal fdatasync: %s", std::strerror(errno)));
  }
  durable_lsn_ = next_lsn_;
  commits_since_sync_ = 0;
  ++stats_.syncs;
  return Status::OK();
}

Status Wal::WriteHeader(uint64_t epoch) {
  char hdr[kWalHeaderSize] = {};
  EncodeFixed64(hdr, kWalMagic);
  EncodeFixed32(hdr + 8, kWalVersion);
  EncodeFixed64(hdr + 12, epoch);
  ssize_t n = ::pwrite(fd_, hdr, kWalHeaderSize, 0);
  if (n != static_cast<ssize_t>(kWalHeaderSize)) {
    return Status::IOError(StrFormat("wal header pwrite: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status Wal::Reset(uint64_t epoch) {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(StrFormat("wal ftruncate: %s", std::strerror(errno)));
  }
  HAZY_RETURN_NOT_OK(WriteHeader(epoch));
  base_epoch_ = epoch;
  next_lsn_ = kWalHeaderSize;
  durable_lsn_ = kWalHeaderSize;
  commits_since_sync_ = 0;
  group_dirty_ = false;
  logged_pages_.clear();
  records_.clear();
  // Through Sync(), not a raw fdatasync: the rebase at a checkpoint commit
  // is a fault point the crash-injection hook must be able to reach.
  return Sync();
}

}  // namespace hazy::storage
