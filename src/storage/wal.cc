#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "storage/coding.h"

namespace hazy::storage {

namespace {

// The bytes "HAZYWAL1" read as a little-endian u64.
constexpr uint64_t kWalMagic = 0x314C4157595A4148ull;
// v2: row-level logical payloads switched to the compact varint layout
// (Table::LogRowOp); a v1 log would misparse at replay, so it is rejected.
constexpr uint32_t kWalVersion = 2;
// Header: u64 magic, u32 version, u64 base epoch, u32 pad.
constexpr size_t kWalHeaderSize = 24;
// Record framing: u32 payload len, u8 type, u64 checksum.
constexpr size_t kRecordHeaderSize = 4 + 1 + 8;
// Sanity bound on one record. Logical records carry whole encoded rows
// (overflow-spilled rows run to megabytes), so the cap must be generous —
// the real torn-tail guards are the within-file-size bound and the
// checksum; this only stops a garbage length from driving a huge resize.
constexpr size_t kMaxPayload = 1u << 30;
// Append-buffer flush threshold: a bulk-load batch logs thousands of rows
// under one commit marker, and one pwrite per flush beats one per record.
constexpr size_t kWalBufferCap = 1u << 20;

uint64_t Fnv1a64(uint8_t type, std::string_view payload) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  mix(type);
  for (char c : payload) mix(static_cast<uint8_t>(c));
  return h;
}

}  // namespace

Wal::~Wal() {
  if (fd_ >= 0) Close().ok();
}

Status Wal::Open(const std::string& path, const WalOptions& options) {
  // Open is single-threaded recovery-phase API, but the locked helpers it
  // shares with the concurrent appenders REQUIRE mu_, so hold it anyway.
  MutexLock lock(mu_);
  if (fd_ >= 0) return Status::InvalidArgument("wal already open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  options_ = options;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    fd_ = -1;
    return Status::IOError(StrFormat("lseek %s: %s", path.c_str(), std::strerror(errno)));
  }
  if (static_cast<size_t>(size) < kWalHeaderSize) {
    // Fresh (or torn-at-birth) log: write an empty epoch-0 header. The
    // database rebases it onto the real checkpoint epoch during Open.
    return ResetLocked(0);
  }
  char hdr[kWalHeaderSize];
  if (::pread(fd, hdr, kWalHeaderSize, 0) != static_cast<ssize_t>(kWalHeaderSize)) {
    return Status::IOError("wal header read failed");
  }
  if (DecodeFixed64(hdr) != kWalMagic) {
    return Status::Corruption(StrFormat("%s is not a hazy WAL file", path.c_str()));
  }
  const uint32_t version = DecodeFixed32(hdr + 8);
  if (version != kWalVersion && version != 1) {
    return Status::NotSupported(StrFormat("unsupported WAL version %u", version));
  }
  base_epoch_ = DecodeFixed64(hdr + 12);
  next_lsn_ = kWalHeaderSize;
  durable_lsn_ = kWalHeaderSize;
  buffer_start_ = next_lsn_;
  tail_bytes_.store(next_lsn_, std::memory_order_relaxed);
  HAZY_RETURN_NOT_OK(ScanExisting());
  if (version == 1) {
    // v1 differs from v2 only in the logical row-payload layout; the record
    // framing and before-images are identical. A v1 log is therefore still
    // good for rollback — unless it holds logical records, which v2 replay
    // would misparse.
    for (const Record& rec : records_) {
      if (rec.type == WalRecordType::kLogical) {
        return Status::NotSupported(
            StrFormat("%s is a version-1 WAL with unreplayed logical records; "
                      "upgrade requires a clean checkpoint on the old build",
                      path.c_str()));
      }
    }
    // Rebase the on-disk header to v2 now: new appends are v2 logical
    // records, and a reopen before the next checkpoint must not re-judge
    // them under the old version. (Not fsynced — a crash first simply
    // re-runs this acceptance path.)
    HAZY_RETURN_NOT_OK(WriteHeaderLocked(base_epoch_));
  }
  return Status::OK();
}

Status Wal::ScanExisting() {
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) return Status::IOError("wal lseek failed");

  // Pass 1: decode every intact record; stop at the first torn/corrupt one.
  std::vector<Record> valid;
  std::vector<uint64_t> ends;  // file offset just past each record
  uint64_t off = kWalHeaderSize;
  std::string buf;
  while (off + kRecordHeaderSize <= static_cast<uint64_t>(file_size)) {
    char rh[kRecordHeaderSize];
    if (::pread(fd_, rh, kRecordHeaderSize, static_cast<off_t>(off)) !=
        static_cast<ssize_t>(kRecordHeaderSize)) {
      break;
    }
    uint32_t len = DecodeFixed32(rh);
    uint8_t type = static_cast<uint8_t>(rh[4]);
    uint64_t checksum = DecodeFixed64(rh + 5);
    if (len > kMaxPayload || type < 1 || type > 4 ||
        off + kRecordHeaderSize + len > static_cast<uint64_t>(file_size)) {
      break;
    }
    buf.resize(len);
    if (len > 0 && ::pread(fd_, buf.data(), len, static_cast<off_t>(off + kRecordHeaderSize)) !=
                       static_cast<ssize_t>(len)) {
      break;
    }
    if (Fnv1a64(type, buf) != checksum) break;
    Record rec;
    rec.lsn = off;
    rec.type = static_cast<WalRecordType>(type);
    rec.payload = buf;
    valid.push_back(std::move(rec));
    off += kRecordHeaderSize + len;
    ends.push_back(off);
  }
  const uint64_t valid_end = ends.empty() ? kWalHeaderSize : ends.back();

  // Truncate only *invalid* bytes — a torn final write. That is always safe:
  // a torn before-image was never durable, so the write-ahead rule means its
  // page never reached the database file, and a torn logical/commit record
  // never acknowledged. Everything valid stays in place untouched.
  if (valid_end != static_cast<uint64_t>(file_size)) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      return Status::IOError(StrFormat("wal ftruncate: %s", std::strerror(errno)));
    }
  }
  next_lsn_ = valid_end;
  durable_lsn_ = valid_end;
  buffer_start_ = valid_end;
  tail_bytes_.store(next_lsn_, std::memory_order_relaxed);

  // Logical records after the last commit/abort marker belong to an
  // operation that never committed. They must not replay — and must not be
  // swept into the *next* operation's commit marker — but the before-images
  // interleaved with them still protect pages. Close the group with an
  // appended abort marker (crash-safe: nothing durable is destroyed; replay
  // treats abort as discard-group, so re-crashing here is idempotent).
  bool open_group = false;
  for (const Record& rec : valid) {
    if (rec.type == WalRecordType::kLogical) {
      open_group = true;
    } else if (rec.type == WalRecordType::kCommit ||
               rec.type == WalRecordType::kAbort) {
      open_group = false;
    }
  }
  if (open_group) {
    uint64_t lsn = 0;
    Record abort_rec;
    abort_rec.type = WalRecordType::kAbort;
    HAZY_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kAbort, {}, &lsn));
    HAZY_RETURN_NOT_OK(SyncLocked());
    abort_rec.lsn = lsn;
    valid.push_back(std::move(abort_rec));
  }

  records_ = std::move(valid);
  logged_pages_.clear();
  for (const Record& rec : records_) {
    if (rec.type == WalRecordType::kBeforeImage && rec.payload.size() >= 4) {
      logged_pages_.insert(DecodeFixed32(rec.payload.data()));
    }
  }
  return Status::OK();
}

Status Wal::Close() {
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  // Flush (no fsync) so a clean close keeps group-commit records the OS
  // page cache would have carried anyway; a crash simply loses the buffered
  // tail like any un-synced suffix. A poisoned buffer — one whose statement
  // already reported failure — must NOT be persisted on the way out: the
  // caller was told that work never happened (and nothing acknowledged can
  // sit behind it; AppendRecordLocked heals or fails before stacking more).
  Status flush;
  if (!buffer_poisoned_) {
    flush = FlushBufferLocked();
  } else if (acked_len_ > 0) {
    // The failed statement's bytes all sit past the acknowledged prefix:
    // persist the prefix (every group a caller was told committed), drop
    // the rest.
    flush = WriteRawLocked(buffer_start_, buffer_.data(), acked_len_);
  }
  if (!flush.ok()) {
    // A clean shutdown losing acknowledged group-commit records must not
    // be silent, even though destructor-path callers cannot act on it.
    HAZY_LOG(Warning) << "wal close: buffered records lost: " << flush.ToString();
  }
  ::close(fd_);
  fd_ = -1;
  return flush;
}

Status Wal::WriteRawLocked(uint64_t offset, const char* data, size_t len) {
  size_t write_len = len;
  if (fault_hook_) {
    int action = fault_hook_("wal_append", kInvalidPageId);
    if (action == kFaultFail) return Status::IOError("injected fault in wal append");
    if (action >= 0) {
      write_len = std::min<size_t>(static_cast<size_t>(action), len);
      if (write_len > 0) {
        ::pwrite(fd_, data, write_len, static_cast<off_t>(offset));
      }
      return Status::IOError(
          StrFormat("injected torn wal append (%zu bytes)", write_len));
    }
  }
  ssize_t n = ::pwrite(fd_, data, len, static_cast<off_t>(offset));
  if (n != static_cast<ssize_t>(len)) {
    return Status::IOError(StrFormat("wal pwrite: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status Wal::FlushBufferLocked() {
  if (buffer_.empty()) return Status::OK();
  // On failure (including an injected torn write) the buffer is retained —
  // a retry rewrites the same offsets — but marked poisoned: it now holds
  // records of a statement that reported failure, so it must only reach
  // the file through a later statement's successful flush (whose commit
  // re-acknowledges the swept-in records), never through Close().
  Status s = WriteRawLocked(buffer_start_, buffer_.data(), buffer_.size());
  if (!s.ok()) {
    buffer_poisoned_ = true;
    return s;
  }
  buffer_start_ += buffer_.size();
  buffer_.clear();
  buffer_poisoned_ = false;
  acked_len_ = 0;
  return Status::OK();
}

Status Wal::AppendRecordLocked(WalRecordType type, std::string_view payload,
                               uint64_t* lsn) {
  obs::TraceEventTimer append_timer(obs::SpanKind::kWalAppend);
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (payload.size() > kMaxPayload) {
    // Fail the statement rather than write a record recovery would reject.
    return Status::InvalidArgument("wal record payload too large");
  }
  if (buffer_poisoned_) {
    // A previous statement's flush failed and its un-acknowledged records
    // still sit in the buffer. Heal (retry the flush) before accepting new
    // records: a success must never stack on top of a reported failure —
    // otherwise a clean Close would have to choose between persisting the
    // failed statement and dropping the successful ones. If the retry
    // fails, this statement fails loudly too.
    HAZY_RETURN_NOT_OK(FlushBufferLocked());
  }
  const size_t rec_size = kRecordHeaderSize + payload.size();
  if (!buffer_.empty() && buffer_.size() + rec_size > kWalBufferCap) {
    HAZY_RETURN_NOT_OK(FlushBufferLocked());
  }
  const size_t base = buffer_.size();
  buffer_.reserve(base + rec_size);
  PutFixed32(&buffer_, static_cast<uint32_t>(payload.size()));
  buffer_.push_back(static_cast<char>(type));
  PutFixed64(&buffer_, Fnv1a64(static_cast<uint8_t>(type), payload));
  buffer_.append(payload.data(), payload.size());
  if (buffer_.size() >= kWalBufferCap) {
    Status s = FlushBufferLocked();
    if (!s.ok()) {
      // The record never reached the file; drop it from the buffer so the
      // failed statement leaves no half-appended tail behind.
      buffer_.resize(base);
      return s;
    }
  }
  *lsn = next_lsn_;
  next_lsn_ += rec_size;
  tail_bytes_.store(next_lsn_, std::memory_order_relaxed);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(rec_size, std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<uint64_t> Wal::AppendBeforeImage(uint32_t page_id, const char* page) {
  MutexLock lock(mu_);
  std::string payload;
  payload.reserve(4 + kPageSize);
  PutFixed32(&payload, page_id);
  payload.append(page, kPageSize);
  uint64_t lsn = 0;
  HAZY_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kBeforeImage, payload, &lsn));
  logged_pages_.insert(page_id);
  stats_.before_images.fetch_add(1, std::memory_order_relaxed);
  return lsn;
}

Status Wal::AppendLogical(std::string_view payload) {
  if (logical_paused()) return Status::OK();
  MutexLock lock(mu_);
  uint64_t lsn = 0;
  HAZY_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kLogical, payload, &lsn));
  group_dirty_ = true;
  return Status::OK();
}

Status Wal::CommitLocked(bool batched) {
  uint64_t lsn = 0;
  std::string payload(1, batched ? '\1' : '\0');
  HAZY_RETURN_NOT_OK(AppendRecordLocked(WalRecordType::kCommit, payload, &lsn));
  group_dirty_ = false;
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  Status s;
  switch (options_.sync_mode) {
    case WalOptions::SyncMode::kEveryCommit:
      s = SyncLocked();
      break;
    case WalOptions::SyncMode::kGroupCommit:
      if (++commits_since_sync_ >= options_.group_commit_interval) {
        s = SyncLocked();
      }
      break;
    case WalOptions::SyncMode::kNever:
      break;
  }
  // Only a commit that returns OK is acknowledged: advancing the prefix on
  // a torn sync would let a poisoned-buffer Close persist the very marker
  // whose statement reported failure.
  if (s.ok()) acked_len_ = buffer_.size();
  return s;
}

Status Wal::Commit(bool batched) {
  MutexLock lock(mu_);
  return CommitLocked(batched);
}

Status Wal::AutoCommit() {
  if (logical_paused()) return Status::OK();
  MutexLock lock(mu_);
  if (in_group_ || !group_dirty_) return Status::OK();
  return CommitLocked(/*batched=*/false);
}

Status Wal::EndGroup() {
  MutexLock lock(mu_);
  in_group_ = false;
  if (!group_dirty_) return Status::OK();
  return CommitLocked(/*batched=*/true);
}

Status Wal::EnsureDurable(uint64_t lsn) {
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (lsn < durable_lsn_) return Status::OK();
  return SyncLocked();
}

Status Wal::SyncLocked() {
  obs::TraceEventTimer sync_timer(obs::SpanKind::kWalFsync);
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  HAZY_RETURN_NOT_OK(FlushBufferLocked());
  if (fault_hook_ && fault_hook_("wal_sync", kInvalidPageId) != kFaultNone) {
    return Status::IOError("injected fault in wal sync");
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StrFormat("wal fdatasync: %s", std::strerror(errno)));
  }
  durable_lsn_ = next_lsn_;
  commits_since_sync_ = 0;
  stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Sync() {
  MutexLock lock(mu_);
  return SyncLocked();
}

Status Wal::WriteHeaderLocked(uint64_t epoch) {
  char hdr[kWalHeaderSize] = {};
  EncodeFixed64(hdr, kWalMagic);
  EncodeFixed32(hdr + 8, kWalVersion);
  EncodeFixed64(hdr + 12, epoch);
  ssize_t n = ::pwrite(fd_, hdr, kWalHeaderSize, 0);
  if (n != static_cast<ssize_t>(kWalHeaderSize)) {
    return Status::IOError(StrFormat("wal header pwrite: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status Wal::ResetLocked(uint64_t epoch) {
  if (fd_ < 0) return Status::InvalidArgument("wal not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(StrFormat("wal ftruncate: %s", std::strerror(errno)));
  }
  HAZY_RETURN_NOT_OK(WriteHeaderLocked(epoch));
  base_epoch_ = epoch;
  next_lsn_ = kWalHeaderSize;
  durable_lsn_ = kWalHeaderSize;
  buffer_.clear();
  buffer_start_ = kWalHeaderSize;
  buffer_poisoned_ = false;
  acked_len_ = 0;
  tail_bytes_.store(next_lsn_, std::memory_order_relaxed);
  commits_since_sync_ = 0;
  group_dirty_ = false;
  logged_pages_.clear();
  records_.clear();
  // Through SyncLocked, not a raw fdatasync: the rebase at a checkpoint
  // commit is a fault point the crash-injection hook must be able to reach.
  return SyncLocked();
}

Status Wal::Reset(uint64_t epoch) {
  MutexLock lock(mu_);
  return ResetLocked(epoch);
}

}  // namespace hazy::storage
