// Little-endian byte encoding helpers (RocksDB coding.h style). All on-disk
// structures in hazy::storage serialize through these.

#ifndef HAZY_STORAGE_CODING_H_
#define HAZY_STORAGE_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace hazy::storage {

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutFloat(std::string* dst, float v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

// Decoders operate on a cursor into a string_view and advance it. They
// return false on truncation, letting callers surface Status::Corruption.

inline bool GetFixed16(std::string_view* src, uint16_t* v) {
  if (src->size() < 2) return false;
  std::memcpy(v, src->data(), 2);
  src->remove_prefix(2);
  return true;
}

inline bool GetFixed32(std::string_view* src, uint32_t* v) {
  if (src->size() < 4) return false;
  std::memcpy(v, src->data(), 4);
  src->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* src, uint64_t* v) {
  if (src->size() < 8) return false;
  std::memcpy(v, src->data(), 8);
  src->remove_prefix(8);
  return true;
}

inline bool GetDouble(std::string_view* src, double* v) {
  if (src->size() < 8) return false;
  std::memcpy(v, src->data(), 8);
  src->remove_prefix(8);
  return true;
}

inline bool GetFloat(std::string_view* src, float* v) {
  if (src->size() < 4) return false;
  std::memcpy(v, src->data(), 4);
  src->remove_prefix(4);
  return true;
}

inline bool GetLengthPrefixed(std::string_view* src, std::string_view* out) {
  uint32_t len = 0;
  if (!GetFixed32(src, &len)) return false;
  if (src->size() < len) return false;
  *out = src->substr(0, len);
  src->remove_prefix(len);
  return true;
}

// Raw in-place accessors for fixed offsets inside a page buffer.

inline uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline double DecodeDouble(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

// LEB128 varints (7 bits per byte, high bit = continuation) and zigzag
// signed mapping. The write-ahead log's logical row records use these: a
// bulk-load epoch logs millions of small ints and short strings whose
// fixed-width encodings are mostly zero bytes, and replay reads the log
// back once per recovery — a size win with no hot-path decode cost.

inline void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  dst->append(buf, n);
}

inline bool GetVarint64(std::string_view* src, uint64_t* v) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift < 64 && !src->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>(src->front());
    src->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // truncated or overlong
}

/// Zigzag: small-magnitude signed values (either sign) stay short.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarint64Signed(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigzagEncode(v));
}
inline bool GetVarint64Signed(std::string_view* src, int64_t* v) {
  uint64_t u = 0;
  if (!GetVarint64(src, &u)) return false;
  *v = ZigzagDecode(u);
  return true;
}

inline void PutVarintLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

inline bool GetVarintLengthPrefixed(std::string_view* src, std::string_view* out) {
  uint64_t len = 0;
  if (!GetVarint64(src, &len)) return false;
  if (src->size() < len) return false;
  *out = src->substr(0, len);
  src->remove_prefix(len);
  return true;
}

inline void EncodeFixed16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void EncodeFixed32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void EncodeFixed64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
inline void EncodeDouble(char* p, double v) { std::memcpy(p, &v, 8); }

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_CODING_H_
