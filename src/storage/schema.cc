#include "storage/schema.h"

#include <cmath>

#include "common/strings.h"
#include "storage/coding.h"

namespace hazy::storage {

const char* ColumnTypeToString(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "INT";
    case ColumnType::kDouble:
      return "REAL";
    case ColumnType::kText:
      return "TEXT";
  }
  return "?";
}

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "NULL";
  if (std::holds_alternative<int64_t>(v)) {
    return StrFormat("%lld", static_cast<long long>(std::get<int64_t>(v)));
  }
  if (std::holds_alternative<double>(v)) return StrFormat("%g", std::get<double>(v));
  return std::get<std::string>(v);
}

bool ValueEquals(const Value& a, const Value& b) {
  CompareResult r = ValueCompare(a, b);
  return r.ok && r.cmp == 0;
}

CompareResult ValueCompare(const Value& a, const Value& b) {
  if (std::holds_alternative<std::monostate>(a) ||
      std::holds_alternative<std::monostate>(b)) {
    return {false, 0};
  }
  // Numeric comparisons allow int/double mixing; text compares with text.
  auto as_num = [](const Value& v, double* out) {
    if (std::holds_alternative<int64_t>(v)) {
      *out = static_cast<double>(std::get<int64_t>(v));
      return true;
    }
    if (std::holds_alternative<double>(v)) {
      *out = std::get<double>(v);
      return true;
    }
    return false;
  };
  double da = 0, db = 0;
  if (as_num(a, &da) && as_num(b, &db)) {
    if (da < db) return {true, -1};
    if (da > db) return {true, 1};
    return {true, 0};
  }
  if (std::holds_alternative<std::string>(a) && std::holds_alternative<std::string>(b)) {
    int c = std::get<std::string>(a).compare(std::get<std::string>(b));
    return {true, c < 0 ? -1 : (c > 0 ? 1 : 0)};
  }
  return {false, 0};
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsIgnoreCase(cols_[i].name, name)) return i;
  }
  return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
}

Status Schema::EncodeRow(const Row& row, std::string* out) const {
  if (row.size() != cols_.size()) {
    return Status::InvalidArgument(StrFormat("row has %zu values, schema has %zu columns",
                                             row.size(), cols_.size()));
  }
  out->clear();
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (std::holds_alternative<std::monostate>(v)) {
      out->push_back(0);  // null marker
      continue;
    }
    out->push_back(1);
    switch (cols_[i].type) {
      case ColumnType::kInt64:
        if (!std::holds_alternative<int64_t>(v)) {
          return Status::InvalidArgument(
              StrFormat("column '%s' expects INT", cols_[i].name.c_str()));
        }
        PutFixed64(out, static_cast<uint64_t>(std::get<int64_t>(v)));
        break;
      case ColumnType::kDouble: {
        double d;
        if (std::holds_alternative<double>(v)) {
          d = std::get<double>(v);
        } else if (std::holds_alternative<int64_t>(v)) {
          d = static_cast<double>(std::get<int64_t>(v));
        } else {
          return Status::InvalidArgument(
              StrFormat("column '%s' expects REAL", cols_[i].name.c_str()));
        }
        PutDouble(out, d);
        break;
      }
      case ColumnType::kText:
        if (!std::holds_alternative<std::string>(v)) {
          return Status::InvalidArgument(
              StrFormat("column '%s' expects TEXT", cols_[i].name.c_str()));
        }
        PutLengthPrefixed(out, std::get<std::string>(v));
        break;
    }
  }
  return Status::OK();
}

Status Schema::DecodeRow(std::string_view data, Row* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (const Column& col : cols_) {
    if (data.empty()) return Status::Corruption("row truncated");
    char marker = data[0];
    data.remove_prefix(1);
    if (marker == 0) {
      out->emplace_back(std::monostate{});
      continue;
    }
    switch (col.type) {
      case ColumnType::kInt64: {
        uint64_t v;
        if (!GetFixed64(&data, &v)) return Status::Corruption("row truncated (int)");
        out->emplace_back(static_cast<int64_t>(v));
        break;
      }
      case ColumnType::kDouble: {
        double v;
        if (!GetDouble(&data, &v)) return Status::Corruption("row truncated (real)");
        out->emplace_back(v);
        break;
      }
      case ColumnType::kText: {
        std::string_view s;
        if (!GetLengthPrefixed(&data, &s)) return Status::Corruption("row truncated (text)");
        out->emplace_back(std::string(s));
        break;
      }
    }
  }
  return Status::OK();
}

Status Schema::EncodeRowCompact(const Row& row, std::string* out) const {
  if (row.size() != cols_.size()) {
    return Status::InvalidArgument(StrFormat("row has %zu values, schema has %zu columns",
                                             row.size(), cols_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (std::holds_alternative<std::monostate>(v)) {
      out->push_back(0);  // null marker
      continue;
    }
    out->push_back(1);
    switch (cols_[i].type) {
      case ColumnType::kInt64:
        if (!std::holds_alternative<int64_t>(v)) {
          return Status::InvalidArgument(
              StrFormat("column '%s' expects INT", cols_[i].name.c_str()));
        }
        PutVarint64Signed(out, std::get<int64_t>(v));
        break;
      case ColumnType::kDouble: {
        double d;
        if (std::holds_alternative<double>(v)) {
          d = std::get<double>(v);
        } else if (std::holds_alternative<int64_t>(v)) {
          d = static_cast<double>(std::get<int64_t>(v));
        } else {
          return Status::InvalidArgument(
              StrFormat("column '%s' expects REAL", cols_[i].name.c_str()));
        }
        PutDouble(out, d);
        break;
      }
      case ColumnType::kText:
        if (!std::holds_alternative<std::string>(v)) {
          return Status::InvalidArgument(
              StrFormat("column '%s' expects TEXT", cols_[i].name.c_str()));
        }
        PutVarintLengthPrefixed(out, std::get<std::string>(v));
        break;
    }
  }
  return Status::OK();
}

Status Schema::DecodeRowCompact(std::string_view data, Row* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (const Column& col : cols_) {
    if (data.empty()) return Status::Corruption("compact row truncated");
    char marker = data[0];
    data.remove_prefix(1);
    if (marker == 0) {
      out->emplace_back(std::monostate{});
      continue;
    }
    switch (col.type) {
      case ColumnType::kInt64: {
        int64_t v;
        if (!GetVarint64Signed(&data, &v)) {
          return Status::Corruption("compact row truncated (int)");
        }
        out->emplace_back(v);
        break;
      }
      case ColumnType::kDouble: {
        double v;
        if (!GetDouble(&data, &v)) return Status::Corruption("compact row truncated (real)");
        out->emplace_back(v);
        break;
      }
      case ColumnType::kText: {
        std::string_view s;
        if (!GetVarintLengthPrefixed(&data, &s)) {
          return Status::Corruption("compact row truncated (text)");
        }
        out->emplace_back(std::string(s));
        break;
      }
    }
  }
  return Status::OK();
}

Status Schema::DecodeInt64Column(std::string_view data, size_t col, int64_t* out) const {
  if (col >= cols_.size() || cols_[col].type != ColumnType::kInt64) {
    return Status::InvalidArgument("DecodeInt64Column needs an INT column");
  }
  for (size_t i = 0; i <= col; ++i) {
    if (data.empty()) return Status::Corruption("row truncated");
    char marker = data[0];
    data.remove_prefix(1);
    if (marker == 0) {
      if (i == col) return Status::Corruption("NULL in INT key column");
      continue;
    }
    if (i == col) {
      uint64_t v;
      if (!GetFixed64(&data, &v)) return Status::Corruption("row truncated (int)");
      *out = static_cast<int64_t>(v);
      return Status::OK();
    }
    switch (cols_[i].type) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
        if (data.size() < 8) return Status::Corruption("row truncated");
        data.remove_prefix(8);
        break;
      case ColumnType::kText: {
        std::string_view s;
        if (!GetLengthPrefixed(&data, &s)) return Status::Corruption("row truncated (text)");
        break;
      }
    }
  }
  return Status::Corruption("row truncated");
}

}  // namespace hazy::storage
