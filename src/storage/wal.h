// Page-level write-ahead log (ARIES-lite) for the database engine.
//
// The checkpoint subsystem (persist/checkpoint.h) gives the engine a durable,
// *internally consistent* snapshot: tables and classification views as of one
// epoch. What it cannot give on its own is exactness between checkpoints — a
// dirty base-table page evicted to the database file after the last
// checkpoint survives a crash while the views never trained on its rows. The
// WAL closes that gap with two record kinds:
//
//   before-images   The first time a page is dirtied after a checkpoint, its
//                   *on-disk* content — which is by construction its content
//                   at the checkpoint — is logged. Recovery applies every
//                   before-image, rolling the database file back to exactly
//                   the checkpoint the views were saved at. Pages allocated
//                   after the checkpoint are exempt (their checkpoint-time
//                   content is irrelevant; recovery's mark-and-sweep reclaims
//                   them).
//
//   logical records Row/DDL mutations (insert, delete, update, create table,
//                   create classification view, view-queue flush points),
//                   grouped by commit markers. After the rollback, recovery
//                   replays committed groups through the normal trigger
//                   machinery, so the views re-train on the redone rows
//                   exactly as they did live — base tables AND views land on
//                   the same point: checkpoint + committed suffix.
//
// The write-ahead rule is enforced by the buffer pool: every page carries the
// LSN of the record protecting it (storage/page.h footer), and a dirty page
// may reach the database file only after the log is durable up to that LSN
// (EnsureDurable). Commit durability is configurable: fsync per commit, or
// group commit amortizing one fsync over N commits.
//
// The log is tied to the checkpoint epoch it protects (header field): a
// checkpoint commit resets the log to the new epoch, and recovery discards a
// log whose base epoch no longer matches the database header (the crash
// happened after the checkpoint flip but before the log reset — the
// checkpoint already absorbed everything the log holds).
//
// Record framing: [u32 len][u8 type][u64 checksum][payload]; the checksum
// (FNV-1a over type+payload) makes a torn log tail — the expected shape of a
// mid-commit crash — detectable: recovery stops at the first invalid record
// and truncates the tail away.
//
// Format v2: row-level logical payloads are varint-compressed (zigzag ints,
// varint string lengths — see Table::LogRowOp / Schema::EncodeRowCompact),
// cutting the log volume of bulk-load-heavy epochs and with it replay
// length. v1 logs would misparse at replay, so they are rejected by the
// version check.

#ifndef HAZY_STORAGE_WAL_H_
#define HAZY_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/pager.h"

namespace hazy::storage {

/// Record types in the log.
enum class WalRecordType : uint8_t {
  kBeforeImage = 1,  ///< payload: u32 page_id + kPageSize page bytes
  kLogical = 2,      ///< payload: opaque logical op (WalOp-tagged, see below)
  kCommit = 3,       ///< payload: u8 batched (1 = replay group as UpdateBatch)
  kAbort = 4,        ///< discards the open group (a crash's uncommitted tail)
};

/// First byte of a kLogical payload. The payload layouts are owned by the
/// layers that write them (storage/table.cc, engine/database.cc); the WAL
/// treats them as opaque bytes.
enum class WalOp : uint8_t {
  kRowInsert = 1,    ///< table name, encoded row
  kRowDelete = 2,    ///< table name, u64 primary key
  kRowUpdate = 3,    ///< table name, u64 primary key, encoded new row
  kCreateTable = 4,  ///< table name, schema columns, primary key
  kCreateView = 5,   ///< serialized ClassificationViewDef
  kViewFlush = 6,    ///< view name: mid-batch trigger-queue fold point
};

/// Durability policy for commit markers.
struct WalOptions {
  enum class SyncMode {
    kEveryCommit,  ///< fsync on every commit marker (default, safest)
    kGroupCommit,  ///< fsync once every `group_commit_interval` commits
    kNever,        ///< only explicit Sync()/checkpoints fsync (benchmarks)
  };
  SyncMode sync_mode = SyncMode::kEveryCommit;
  uint32_t group_commit_interval = 32;
};

/// Atomic so the background writer / checkpoint daemon can report while
/// foreground commits append (same pattern as PagerStats).
struct WalStats {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> before_images{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> bytes{0};
};

/// \brief Append-only page/logical log bound to one database file.
///
/// Internally synchronized: the background write-back thread appends
/// before-images and coalesces EnsureDurable while foreground statements
/// append logical records and commit, so every mutating entry point takes
/// the log's own mutex. Open()/ScanExisting() and records() remain
/// single-threaded recovery-phase API.
class Wal {
 public:
  /// One decoded record (recovery side).
  struct Record {
    uint64_t lsn = 0;
    WalRecordType type = WalRecordType::kLogical;
    std::string payload;
  };

  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) the log file. An existing log is scanned:
  /// valid records are retained for recovery (see records()), a torn tail is
  /// truncated, and the logged-page set is rebuilt so pages already
  /// protected this epoch are not re-imaged.
  Status Open(const std::string& path, const WalOptions& options)
      EXCLUDES(mu_);

  Status Close() EXCLUDES(mu_);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// The checkpoint epoch this log's before-images roll back to.
  uint64_t base_epoch() const { return base_epoch_; }

  /// Records recovered by Open(), in log order. Cleared by Reset().
  const std::vector<Record>& records() const { return records_; }

  /// Releases the recovered-record buffer (call once recovery has consumed
  /// it — a later crash re-reads the log file, never this vector; the
  /// before-image payloads alone can be hundreds of megabytes).
  void ClearRecords() {
    records_.clear();
    records_.shrink_to_fit();
  }

  /// Logs the page's checkpoint-time image (call before the first in-pool
  /// mutation reaches the file). Returns the record's LSN; the page must not
  /// be written back until the log is durable past it.
  StatusOr<uint64_t> AppendBeforeImage(uint32_t page_id, const char* page)
      EXCLUDES(mu_);

  /// Marks a page allocated after the base checkpoint: its checkpoint-time
  /// content is irrelevant, so it never needs a before-image this epoch.
  void NotePageAllocated(uint32_t page_id) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    logged_pages_.insert(page_id);
  }

  /// True when the page already has (or needs no) before-image this epoch.
  bool PageLogged(uint32_t page_id) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return logged_pages_.count(page_id) != 0;
  }

  /// Bytes appended since the last Reset (header included) — the length a
  /// crash would have to replay. The checkpoint daemon's size trigger.
  uint64_t tail_bytes() const { return tail_bytes_.load(std::memory_order_relaxed); }

  /// Runtime knobs (PRAGMA wal_sync / group_commit_interval).
  void set_sync_mode(WalOptions::SyncMode mode) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    options_.sync_mode = mode;
  }
  void set_group_commit_interval(uint32_t n) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    options_.group_commit_interval = n == 0 ? 1 : n;
  }
  WalOptions options() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return options_;
  }

  /// Appends a logical record; when not inside a group, the caller commits
  /// separately via AutoCommit() once the operation (triggers included) has
  /// fully applied. No-op while logical logging is paused.
  Status AppendLogical(std::string_view payload) EXCLUDES(mu_);

  /// Commit marker + fsync per policy. `batched` records whether the group
  /// must be replayed inside BeginUpdateBatch/EndUpdateBatch to reproduce
  /// the live fold boundaries bit-exactly.
  Status Commit(bool batched) EXCLUDES(mu_);

  /// Commits the current single-op group unless a batch group is open (or
  /// logical logging is paused, or nothing was logged since the last
  /// commit).
  Status AutoCommit() EXCLUDES(mu_);

  /// Batch-group bracketing, mirroring Database::Begin/EndUpdateBatch.
  void BeginGroup() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    in_group_ = true;
  }
  Status EndGroup() EXCLUDES(mu_);

  /// Suspends logical logging (checkpoint-internal system-table writes and
  /// recovery replay must not re-log themselves). Before-image logging is
  /// unaffected. Nestable.
  void PauseLogical() { logical_pause_.fetch_add(1, std::memory_order_relaxed); }
  void ResumeLogical() { logical_pause_.fetch_sub(1, std::memory_order_relaxed); }
  bool logical_paused() const {
    return logical_pause_.load(std::memory_order_relaxed) > 0;
  }

  /// Makes the log durable at least up to `lsn` (no-op if already durable).
  Status EnsureDurable(uint64_t lsn) EXCLUDES(mu_);

  /// Unconditional fsync of everything appended so far.
  Status Sync() EXCLUDES(mu_);

  /// Truncates the log to empty, rebasing it on checkpoint `epoch` — the
  /// atomic hand-off at a checkpoint commit. Clears the logged-page set and
  /// any recovered records.
  Status Reset(uint64_t epoch) EXCLUDES(mu_);

  /// Fault hook for crash-injection tests (ops "wal_append", "wal_sync").
  void SetFaultHook(FaultHook hook) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    fault_hook_ = std::move(hook);
  }

  const WalStats& stats() const { return stats_; }

 private:
  // Unlocked bodies; callers hold mu_.
  Status AppendRecordLocked(WalRecordType type, std::string_view payload,
                            uint64_t* lsn) REQUIRES(mu_);
  Status CommitLocked(bool batched) REQUIRES(mu_);
  Status SyncLocked() REQUIRES(mu_);
  Status FlushBufferLocked() REQUIRES(mu_);
  Status WriteRawLocked(uint64_t offset, const char* data, size_t len)
      REQUIRES(mu_);
  Status ScanExisting() REQUIRES(mu_);
  Status WriteHeaderLocked(uint64_t epoch) REQUIRES(mu_);
  Status ResetLocked(uint64_t epoch) REQUIRES(mu_);

  mutable Mutex mu_;
  // fd_/path_/base_epoch_/records_ are written only during the
  // single-threaded open/recovery phase (class contract above); fd_'s
  // post-open mutations (Close) happen under mu_ after concurrency begins.
  int fd_ = -1;
  std::string path_;
  WalOptions options_ GUARDED_BY(mu_);
  uint64_t base_epoch_ = 0;
  uint64_t next_lsn_ GUARDED_BY(mu_) = 0;     // byte offset of the next record
  uint64_t durable_lsn_ GUARDED_BY(mu_) = 0;  // below this offset is fsync'd
  std::atomic<uint64_t> tail_bytes_{0};  // mirror of next_lsn_ for lock-free polls
  /// Append buffer: records accumulate here and reach the file in one
  /// pwrite per flush (at sync points, the size cap, or close) instead of
  /// one syscall per record — a bulk-load batch logs thousands of rows per
  /// commit marker. Invariant: buffer_start_ + buffer_.size() == next_lsn_.
  std::string buffer_ GUARDED_BY(mu_);
  uint64_t buffer_start_ GUARDED_BY(mu_) = 0;  // file offset of buffer byte 0
  bool buffer_poisoned_ GUARDED_BY(mu_) = false;  // failed statement's records
  /// Buffer prefix covered by acknowledged commit markers. When a poisoned
  /// buffer must be dropped at Close, this prefix — every group a caller
  /// was told committed — is still flushable (the failed bytes all sit
  /// after it).
  size_t acked_len_ GUARDED_BY(mu_) = 0;
  uint32_t commits_since_sync_ GUARDED_BY(mu_) = 0;
  bool in_group_ GUARDED_BY(mu_) = false;
  bool group_dirty_ GUARDED_BY(mu_) = false;  // appends since last commit
  std::atomic<int> logical_pause_{0};
  std::unordered_set<uint32_t> logged_pages_ GUARDED_BY(mu_);
  std::vector<Record> records_;
  FaultHook fault_hook_ GUARDED_BY(mu_);
  WalStats stats_;
};

/// Scoped Wal::PauseLogical/ResumeLogical (checkpoint-internal writes,
/// recovery replay, compaction copies). Tolerates a null wal.
class WalLogicalPauseGuard {
 public:
  explicit WalLogicalPauseGuard(Wal* wal) : wal_(wal) {
    if (wal_ != nullptr) wal_->PauseLogical();
  }
  ~WalLogicalPauseGuard() {
    if (wal_ != nullptr) wal_->ResumeLogical();
  }
  WalLogicalPauseGuard(const WalLogicalPauseGuard&) = delete;
  WalLogicalPauseGuard& operator=(const WalLogicalPauseGuard&) = delete;

 private:
  Wal* wal_;
};

/// The log path conventionally paired with a database file.
inline std::string WalPathFor(const std::string& db_path) { return db_path + "-wal"; }

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_WAL_H_
