// Page-level write-ahead log (ARIES-lite) for the database engine.
//
// The checkpoint subsystem (persist/checkpoint.h) gives the engine a durable,
// *internally consistent* snapshot: tables and classification views as of one
// epoch. What it cannot give on its own is exactness between checkpoints — a
// dirty base-table page evicted to the database file after the last
// checkpoint survives a crash while the views never trained on its rows. The
// WAL closes that gap with two record kinds:
//
//   before-images   The first time a page is dirtied after a checkpoint, its
//                   *on-disk* content — which is by construction its content
//                   at the checkpoint — is logged. Recovery applies every
//                   before-image, rolling the database file back to exactly
//                   the checkpoint the views were saved at. Pages allocated
//                   after the checkpoint are exempt (their checkpoint-time
//                   content is irrelevant; recovery's mark-and-sweep reclaims
//                   them).
//
//   logical records Row/DDL mutations (insert, delete, update, create table,
//                   create classification view, view-queue flush points),
//                   grouped by commit markers. After the rollback, recovery
//                   replays committed groups through the normal trigger
//                   machinery, so the views re-train on the redone rows
//                   exactly as they did live — base tables AND views land on
//                   the same point: checkpoint + committed suffix.
//
// The write-ahead rule is enforced by the buffer pool: every page carries the
// LSN of the record protecting it (storage/page.h footer), and a dirty page
// may reach the database file only after the log is durable up to that LSN
// (EnsureDurable). Commit durability is configurable: fsync per commit, or
// group commit amortizing one fsync over N commits.
//
// The log is tied to the checkpoint epoch it protects (header field): a
// checkpoint commit resets the log to the new epoch, and recovery discards a
// log whose base epoch no longer matches the database header (the crash
// happened after the checkpoint flip but before the log reset — the
// checkpoint already absorbed everything the log holds).
//
// Record framing: [u32 len][u8 type][u64 checksum][payload]; the checksum
// (FNV-1a over type+payload) makes a torn log tail — the expected shape of a
// mid-commit crash — detectable: recovery stops at the first invalid record
// and truncates the tail away.

#ifndef HAZY_STORAGE_WAL_H_
#define HAZY_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/pager.h"

namespace hazy::storage {

/// Record types in the log.
enum class WalRecordType : uint8_t {
  kBeforeImage = 1,  ///< payload: u32 page_id + kPageSize page bytes
  kLogical = 2,      ///< payload: opaque logical op (WalOp-tagged, see below)
  kCommit = 3,       ///< payload: u8 batched (1 = replay group as UpdateBatch)
  kAbort = 4,        ///< discards the open group (a crash's uncommitted tail)
};

/// First byte of a kLogical payload. The payload layouts are owned by the
/// layers that write them (storage/table.cc, engine/database.cc); the WAL
/// treats them as opaque bytes.
enum class WalOp : uint8_t {
  kRowInsert = 1,    ///< table name, encoded row
  kRowDelete = 2,    ///< table name, u64 primary key
  kRowUpdate = 3,    ///< table name, u64 primary key, encoded new row
  kCreateTable = 4,  ///< table name, schema columns, primary key
  kCreateView = 5,   ///< serialized ClassificationViewDef
  kViewFlush = 6,    ///< view name: mid-batch trigger-queue fold point
};

/// Durability policy for commit markers.
struct WalOptions {
  enum class SyncMode {
    kEveryCommit,  ///< fsync on every commit marker (default, safest)
    kGroupCommit,  ///< fsync once every `group_commit_interval` commits
    kNever,        ///< only explicit Sync()/checkpoints fsync (benchmarks)
  };
  SyncMode sync_mode = SyncMode::kEveryCommit;
  uint32_t group_commit_interval = 32;
};

struct WalStats {
  uint64_t records = 0;
  uint64_t before_images = 0;
  uint64_t commits = 0;
  uint64_t syncs = 0;
  uint64_t bytes = 0;
};

/// \brief Append-only page/logical log bound to one database file.
class Wal {
 public:
  /// One decoded record (recovery side).
  struct Record {
    uint64_t lsn = 0;
    WalRecordType type = WalRecordType::kLogical;
    std::string payload;
  };

  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) the log file. An existing log is scanned:
  /// valid records are retained for recovery (see records()), a torn tail is
  /// truncated, and the logged-page set is rebuilt so pages already
  /// protected this epoch are not re-imaged.
  Status Open(const std::string& path, const WalOptions& options);

  Status Close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// The checkpoint epoch this log's before-images roll back to.
  uint64_t base_epoch() const { return base_epoch_; }

  /// Records recovered by Open(), in log order. Cleared by Reset().
  const std::vector<Record>& records() const { return records_; }

  /// Releases the recovered-record buffer (call once recovery has consumed
  /// it — a later crash re-reads the log file, never this vector; the
  /// before-image payloads alone can be hundreds of megabytes).
  void ClearRecords() {
    records_.clear();
    records_.shrink_to_fit();
  }

  /// Logs the page's checkpoint-time image (call before the first in-pool
  /// mutation reaches the file). Returns the record's LSN; the page must not
  /// be written back until the log is durable past it.
  StatusOr<uint64_t> AppendBeforeImage(uint32_t page_id, const char* page);

  /// Marks a page allocated after the base checkpoint: its checkpoint-time
  /// content is irrelevant, so it never needs a before-image this epoch.
  void NotePageAllocated(uint32_t page_id) { logged_pages_.insert(page_id); }

  /// True when the page already has (or needs no) before-image this epoch.
  bool PageLogged(uint32_t page_id) const {
    return logged_pages_.count(page_id) != 0;
  }

  /// Appends a logical record; when not inside a group, the caller commits
  /// separately via AutoCommit() once the operation (triggers included) has
  /// fully applied. No-op while logical logging is paused.
  Status AppendLogical(std::string_view payload);

  /// Commit marker + fsync per policy. `batched` records whether the group
  /// must be replayed inside BeginUpdateBatch/EndUpdateBatch to reproduce
  /// the live fold boundaries bit-exactly.
  Status Commit(bool batched);

  /// Commits the current single-op group unless a batch group is open (or
  /// logical logging is paused, or nothing was logged since the last
  /// commit).
  Status AutoCommit();

  /// Batch-group bracketing, mirroring Database::Begin/EndUpdateBatch.
  void BeginGroup() { in_group_ = true; }
  Status EndGroup();

  /// Suspends logical logging (checkpoint-internal system-table writes and
  /// recovery replay must not re-log themselves). Before-image logging is
  /// unaffected. Nestable.
  void PauseLogical() { ++logical_pause_; }
  void ResumeLogical() { --logical_pause_; }
  bool logical_paused() const { return logical_pause_ > 0; }

  /// Makes the log durable at least up to `lsn` (no-op if already durable).
  Status EnsureDurable(uint64_t lsn);

  /// Unconditional fsync of everything appended so far.
  Status Sync();

  /// Truncates the log to empty, rebasing it on checkpoint `epoch` — the
  /// atomic hand-off at a checkpoint commit. Clears the logged-page set and
  /// any recovered records.
  Status Reset(uint64_t epoch);

  /// Fault hook for crash-injection tests (ops "wal_append", "wal_sync").
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  const WalStats& stats() const { return stats_; }

 private:
  Status AppendRecord(WalRecordType type, std::string_view payload, uint64_t* lsn);
  Status WriteRaw(const char* data, size_t len);
  Status ScanExisting();
  Status WriteHeader(uint64_t epoch);

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  uint64_t base_epoch_ = 0;
  uint64_t next_lsn_ = 0;     // byte offset of the next record
  uint64_t durable_lsn_ = 0;  // everything below this offset is fsync'd
  uint32_t commits_since_sync_ = 0;
  bool in_group_ = false;
  bool group_dirty_ = false;  // logical records appended since last commit
  int logical_pause_ = 0;
  std::unordered_set<uint32_t> logged_pages_;
  std::vector<Record> records_;
  FaultHook fault_hook_;
  WalStats stats_;
};

/// Scoped Wal::PauseLogical/ResumeLogical (checkpoint-internal writes,
/// recovery replay, compaction copies). Tolerates a null wal.
class WalLogicalPauseGuard {
 public:
  explicit WalLogicalPauseGuard(Wal* wal) : wal_(wal) {
    if (wal_ != nullptr) wal_->PauseLogical();
  }
  ~WalLogicalPauseGuard() {
    if (wal_ != nullptr) wal_->ResumeLogical();
  }
  WalLogicalPauseGuard(const WalLogicalPauseGuard&) = delete;
  WalLogicalPauseGuard& operator=(const WalLogicalPauseGuard&) = delete;

 private:
  Wal* wal_;
};

/// The log path conventionally paired with a database file.
inline std::string WalPathFor(const std::string& db_path) { return db_path + "-wal"; }

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_WAL_H_
