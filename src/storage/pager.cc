#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace hazy::storage {

Pager::~Pager() {
  if (fd_ >= 0) Close().ok();
}

Status Pager::Open(const std::string& path, bool preserve_existing) {
  if (fd_ >= 0) return Status::InvalidArgument("pager already open");
  int flags = O_RDWR | O_CREAT | (preserve_existing ? 0 : O_TRUNC);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  num_pages_.store(0, std::memory_order_release);
  if (preserve_existing) {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      ::close(fd);
      fd_ = -1;
      return Status::IOError(StrFormat("lseek %s: %s", path.c_str(), std::strerror(errno)));
    }
    num_pages_.store(static_cast<uint32_t>(static_cast<uint64_t>(size) / kPageSize),
                     std::memory_order_release);
  }
  free_list_.clear();
  return Status::OK();
}

Status Pager::Close() {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

StatusOr<uint32_t> Pager::Allocate() {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    uint32_t pid = free_list_.back();
    free_list_.pop_back();
    return pid;
  }
  uint32_t pid = num_pages_.fetch_add(1, std::memory_order_acq_rel);
  // Extend the file with a zero page so later reads are well-defined.
  static const char kZeros[kPageSize] = {};
  HAZY_RETURN_NOT_OK(Write(pid, kZeros));
  return pid;
}

void Pager::Free(uint32_t page_id) {
  if (quarantine_frees_) {
    quarantined_.push_back(page_id);
  } else {
    free_list_.push_back(page_id);
  }
}

Status Pager::Read(uint32_t page_id, char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  if (page_id >= num_pages()) {
    return Status::OutOfRange(StrFormat("read of page %u beyond end (%u pages)",
                                        page_id, num_pages()));
  }
  auto hook = fault_hook();
  if (hook && (*hook)("page_read", page_id) != kFaultNone) {
    return Status::IOError(StrFormat("injected fault reading page %u", page_id));
  }
  ssize_t n = ::pread(fd_, buf, kPageSize, static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StrFormat("pread page %u: %s", page_id, std::strerror(errno)));
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Pager::Write(uint32_t page_id, const char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  size_t len = kPageSize;
  auto hook = fault_hook();
  if (hook) {
    int action = (*hook)("page_write", page_id);
    if (action == kFaultFail) {
      return Status::IOError(StrFormat("injected fault writing page %u", page_id));
    }
    if (action >= 0) {
      // Torn write: persist a prefix, then report the crash.
      len = std::min<size_t>(static_cast<size_t>(action), kPageSize);
      if (len > 0) {
        ::pwrite(fd_, buf, len, static_cast<off_t>(page_id) * kPageSize);
      }
      return Status::IOError(StrFormat("injected torn write of page %u (%zu bytes)",
                                       page_id, len));
    }
  }
  ssize_t n = ::pwrite(fd_, buf, len, static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(len)) {
    return Status::IOError(StrFormat("pwrite page %u: %s", page_id, std::strerror(errno)));
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Pager::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  auto hook = fault_hook();
  if (hook && (*hook)("fdatasync", kInvalidPageId) != kFaultNone) {
    return Status::IOError("injected fault in fdatasync");
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StrFormat("fdatasync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status Pager::TruncateTo(uint32_t num_pages) {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  if (::ftruncate(fd_, static_cast<off_t>(num_pages) * kPageSize) != 0) {
    return Status::IOError(StrFormat("ftruncate: %s", std::strerror(errno)));
  }
  num_pages_.store(num_pages, std::memory_order_release);
  return Status::OK();
}

std::string TempFilePath(const std::string& hint) {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = ::getenv("TMPDIR");
  std::string dir = tmp ? tmp : "/tmp";
  return StrFormat("%s/hazy_%s_%d_%llu.db", dir.c_str(), hint.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(counter.fetch_add(1)));
}

}  // namespace hazy::storage
