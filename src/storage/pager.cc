#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace hazy::storage {

Pager::~Pager() {
  if (fd_ >= 0) Close().ok();
}

Status Pager::Open(const std::string& path, bool preserve_existing) {
  if (fd_ >= 0) return Status::InvalidArgument("pager already open");
  int flags = O_RDWR | O_CREAT | (preserve_existing ? 0 : O_TRUNC);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  num_pages_ = 0;
  if (preserve_existing) {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      ::close(fd);
      fd_ = -1;
      return Status::IOError(StrFormat("lseek %s: %s", path.c_str(), std::strerror(errno)));
    }
    num_pages_ = static_cast<uint32_t>(static_cast<uint64_t>(size) / kPageSize);
  }
  free_list_.clear();
  return Status::OK();
}

Status Pager::Close() {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

StatusOr<uint32_t> Pager::Allocate() {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  ++stats_.allocs;
  if (!free_list_.empty()) {
    uint32_t pid = free_list_.back();
    free_list_.pop_back();
    return pid;
  }
  uint32_t pid = num_pages_++;
  // Extend the file with a zero page so later reads are well-defined.
  static const char kZeros[kPageSize] = {};
  HAZY_RETURN_NOT_OK(Write(pid, kZeros));
  return pid;
}

void Pager::Free(uint32_t page_id) {
  if (quarantine_frees_) {
    quarantined_.push_back(page_id);
  } else {
    free_list_.push_back(page_id);
  }
}

Status Pager::Read(uint32_t page_id, char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  if (page_id >= num_pages_) {
    return Status::OutOfRange(StrFormat("read of page %u beyond end (%u pages)",
                                        page_id, num_pages_));
  }
  ssize_t n = ::pread(fd_, buf, kPageSize, static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StrFormat("pread page %u: %s", page_id, std::strerror(errno)));
  }
  ++stats_.reads;
  return Status::OK();
}

Status Pager::Write(uint32_t page_id, const char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  ssize_t n = ::pwrite(fd_, buf, kPageSize, static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StrFormat("pwrite page %u: %s", page_id, std::strerror(errno)));
  }
  ++stats_.writes;
  return Status::OK();
}

Status Pager::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("pager not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StrFormat("fdatasync: %s", std::strerror(errno)));
  }
  return Status::OK();
}

std::string TempFilePath(const std::string& hint) {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = ::getenv("TMPDIR");
  std::string dir = tmp ? tmp : "/tmp";
  return StrFormat("%s/hazy_%s_%d_%llu.db", dir.c_str(), hint.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(counter.fetch_add(1)));
}

}  // namespace hazy::storage
