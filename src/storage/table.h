// A relational table: schema + heap file + optional primary-key hash index
// + insert/delete observers (the trigger mechanism the engine uses to keep
// classification views in sync, mirroring the paper's PostgreSQL triggers).

#ifndef HAZY_STORAGE_TABLE_H_
#define HAZY_STORAGE_TABLE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/hash_index.h"
#include "storage/heap_file.h"
#include "storage/schema.h"
#include "storage/statement_gate.h"
#include "storage/wal.h"

namespace hazy::storage {

/// \brief Heap-backed table with typed rows.
class Table {
 public:
  /// Trigger callback: fired after a row mutation commits to the heap.
  using Trigger = std::function<Status(const Row&)>;
  /// Update trigger: receives the old and new row images.
  using UpdateTrigger = std::function<Status(const Row& old_row, const Row& new_row)>;

  /// `primary_key`: column index of the PK (or nullopt for none). With a PK,
  /// a hash index accelerates point lookups and rejects duplicates.
  Table(std::string name, Schema schema, BufferPool* pool,
        std::optional<size_t> primary_key);

  /// Allocates backing storage. Must be called once.
  Status Create();

  /// Recovery path: re-attaches to an existing heap chain (from checkpointed
  /// metadata) and rebuilds the in-memory primary-key index with one scan.
  Status Attach(const HeapFileMeta& meta);

  /// Heap metadata snapshot, persisted by the checkpoint subsystem.
  HeapFileMeta heap_meta() const { return heap_->Meta(); }

  /// Inserts a row (fires insert triggers after the write).
  Status Insert(const Row& row);

  /// Point lookup by primary key.
  StatusOr<Row> GetByKey(int64_t key) const;

  /// Deletes by primary key (fires delete triggers). NotFound if absent.
  Status DeleteByKey(int64_t key);

  /// Replaces the row with primary key `key` (fires update triggers with
  /// both images). The new row must keep the same key.
  Status UpdateByKey(int64_t key, const Row& new_row);

  /// Scans all rows; `fn` returns true to continue.
  Status Scan(const std::function<bool(const Row&)>& fn) const;

  /// Registers a post-insert / post-delete / post-update trigger.
  void AddInsertTrigger(Trigger t) { insert_triggers_.push_back(std::move(t)); }
  void AddDeleteTrigger(Trigger t) { delete_triggers_.push_back(std::move(t)); }
  void AddUpdateTrigger(UpdateTrigger t) { update_triggers_.push_back(std::move(t)); }

  /// Attaches the write-ahead log: row mutations append logical records and
  /// auto-commit once the operation (triggers included) has fully applied.
  /// Recovery replays the records through these same entry points.
  void SetWal(Wal* wal) { wal_ = wal; }

  /// Attaches the statement gate: row mutations hold it shared so the
  /// background checkpointer can exclude them at its commit section.
  void SetGate(StatementGate* gate) { gate_ = gate; }

  /// Every page this table's heap owns (data + overflow chains); the
  /// recovery mark-and-sweep's reachability input.
  Status CollectPages(std::vector<uint32_t>* out) const {
    return heap_->CollectPages(out);
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return heap_->num_records(); }
  std::optional<size_t> primary_key() const { return primary_key_; }

 private:
  /// Appends a row-level logical WAL record in the compact varint layout
  /// (no-op without a WAL). `row` is required for insert/update ops.
  Status LogRowOp(WalOp op, int64_t key, const Row* row);

  /// Fires `triggers` then commits the mutation's logical record. Commits
  /// even when a trigger fails: the heap mutation DID apply (the live state
  /// the caller observes), and an uncommitted record would be swept into
  /// the next statement's commit marker. Returns the first trigger error.
  Status FireAndCommit(const std::vector<Trigger>& triggers, const Row& row);
  Status FireAndCommit(const std::vector<UpdateTrigger>& triggers, const Row& old_row,
                       const Row& new_row);

  std::string name_;
  Schema schema_;
  std::unique_ptr<HeapFile> heap_;
  std::optional<size_t> primary_key_;
  HashIndex pk_index_;
  Wal* wal_ = nullptr;
  StatementGate* gate_ = nullptr;
  std::vector<Trigger> insert_triggers_;
  std::vector<Trigger> delete_triggers_;
  std::vector<UpdateTrigger> update_triggers_;
};

/// \brief Named collection of tables sharing one buffer pool.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Creates a table; AlreadyExists if the name is taken.
  StatusOr<Table*> CreateTable(const std::string& name, Schema schema,
                               std::optional<size_t> primary_key);

  /// Recovery path: registers a table over an existing heap chain instead of
  /// allocating fresh storage (see Table::Attach).
  StatusOr<Table*> AttachTable(const std::string& name, Schema schema,
                               std::optional<size_t> primary_key,
                               const HeapFileMeta& meta);

  /// Finds a table by name (case-insensitive).
  StatusOr<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Attaches the write-ahead log: CREATE TABLE is logged as DDL, and every
  /// table (existing and future) logs its row mutations through it.
  void SetWal(Wal* wal);

  /// Attaches the statement gate to every table (existing and future).
  void SetGate(StatementGate* gate);

 private:
  BufferPool* pool_;
  Wal* wal_ = nullptr;
  StatementGate* gate_ = nullptr;
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_TABLE_H_
