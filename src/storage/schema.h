// Relational schema and typed rows for the engine/SQL layer: the base tables
// (Papers, Example_Papers, ...) that classification views are declared over.

#ifndef HAZY_STORAGE_SCHEMA_H_
#define HAZY_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace hazy::storage {

/// Column types supported by the mini relational layer.
enum class ColumnType : uint8_t { kInt64 = 0, kDouble = 1, kText = 2 };

const char* ColumnTypeToString(ColumnType t);

/// One column: a name and a type.
struct Column {
  std::string name;
  ColumnType type;
};

/// A single value; std::monostate encodes SQL NULL.
using Value = std::variant<std::monostate, int64_t, double, std::string>;

/// Renders a value the way the SQL shell prints it.
std::string ValueToString(const Value& v);

/// True if two values are equal (NULL equals nothing).
bool ValueEquals(const Value& a, const Value& b);

/// Three-way comparison used by WHERE predicates; NULLs are incomparable
/// (returns false through `ok`).
struct CompareResult {
  bool ok = false;
  int cmp = 0;
};
CompareResult ValueCompare(const Value& a, const Value& b);

/// A row is one value per schema column.
using Row = std::vector<Value>;

/// \brief Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of the column with this name (case-insensitive), or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  /// Serializes a row to bytes / parses bytes back. Row must match schema.
  Status EncodeRow(const Row& row, std::string* out) const;
  Status DecodeRow(std::string_view data, Row* out) const;

  /// Compact (varint) row codec used by the write-ahead log's logical
  /// records: ints are zigzag varints, text lengths are varints, doubles
  /// stay fixed 8 bytes. Bulk-load-heavy epochs log one encoded row per
  /// insert, so the fixed-width padding of EncodeRow would dominate the log;
  /// this cuts log volume (and therefore replay length) without touching
  /// the heap-page format. Appends to *out (does not clear it).
  Status EncodeRowCompact(const Row& row, std::string* out) const;
  Status DecodeRowCompact(std::string_view data, Row* out) const;

  /// Reads just column `col` (which must be kInt64 and non-null) from an
  /// encoded row, skipping earlier columns without materializing them. The
  /// recovery-time index rebuild uses this to avoid decoding wide TEXT
  /// payloads for every row.
  Status DecodeInt64Column(std::string_view data, size_t col, int64_t* out) const;

 private:
  std::vector<Column> cols_;
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_SCHEMA_H_
