// File-backed page allocator. Every "on-disk" structure in the repo does its
// I/O through a Pager, so the cost of the on-disk architectures is real
// pread/pwrite syscall + copy work per page, matching the cost shape of the
// paper's PostgreSQL substrate.

#ifndef HAZY_STORAGE_PAGER_H_
#define HAZY_STORAGE_PAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace hazy::storage {

/// Cumulative I/O counters (exposed so benchmarks can report physical work).
struct PagerStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
};

/// \brief Allocates, reads and writes kPageSize pages in a single file.
///
/// Freed pages go on an in-memory free list and are recycled by Allocate();
/// this keeps reorganization-heavy workloads from growing the file without
/// bound. Not thread-safe (the on-disk engines are single-writer).
class Pager {
 public:
  Pager() = default;
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or creates) the backing file. By default any existing contents
  /// are truncated (scratch/benchmark usage); with `preserve_existing` the
  /// file is opened as-is and num_pages() reflects its current size — the
  /// recovery path of the persist subsystem.
  Status Open(const std::string& path, bool preserve_existing = false);

  /// Closes the file; further operations fail.
  Status Close();

  /// Allocates a page id (recycling freed pages first).
  StatusOr<uint32_t> Allocate();

  /// Returns a page to the free list (or to the quarantine when enabled).
  void Free(uint32_t page_id);

  /// Checkpointed databases only: freed pages go into a quarantine instead
  /// of the free list, so pages still referenced by the last durable
  /// checkpoint image are never recycled (and overwritten) before the next
  /// checkpoint commits. ReleaseQuarantinedPages() moves them to the free
  /// list — called at each checkpoint's commit point, when the image that
  /// referenced them has been superseded.
  void EnableFreeQuarantine() { quarantine_frees_ = true; }
  void ReleaseQuarantinedPages() {
    free_list_.insert(free_list_.end(), quarantined_.begin(), quarantined_.end());
    quarantined_.clear();
  }
  size_t quarantined_count() const { return quarantined_.size(); }

  /// Reads page `page_id` into `buf` (must hold kPageSize bytes).
  Status Read(uint32_t page_id, char* buf);

  /// Writes kPageSize bytes from `buf` to page `page_id`.
  Status Write(uint32_t page_id, const char* buf);

  /// Flushes OS buffers (fdatasync).
  Status Sync();

  uint32_t num_pages() const { return num_pages_; }
  size_t free_list_size() const { return free_list_.size(); }
  const PagerStats& stats() const { return stats_; }
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint32_t num_pages_ = 0;
  std::vector<uint32_t> free_list_;
  bool quarantine_frees_ = false;
  std::vector<uint32_t> quarantined_;
  PagerStats stats_;
};

/// Creates a unique temporary file path under $TMPDIR (or /tmp) with the
/// given name hint. Used by tests and benchmarks.
std::string TempFilePath(const std::string& hint);

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_PAGER_H_
