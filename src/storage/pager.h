// File-backed page allocator. Every "on-disk" structure in the repo does its
// I/O through a Pager, so the cost of the on-disk architectures is real
// pread/pwrite syscall + copy work per page, matching the cost shape of the
// paper's PostgreSQL substrate.

#ifndef HAZY_STORAGE_PAGER_H_
#define HAZY_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace hazy::storage {

/// Cumulative I/O counters (exposed so benchmarks can report physical work).
/// Atomic so concurrent read-side page faults (buffer-pool misses overlap
/// their pager reads) can bump them without a data race.
struct PagerStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> allocs{0};
};

/// Test-only fault injection on physical I/O (the crash-injection harness).
/// Called with the operation name ("page_read", "page_write", "fdatasync",
/// "wal_append", "wal_sync") and the page id (kInvalidPageId for non-page
/// I/O) before the syscall. Return values:
///   kFaultNone  proceed normally
///   kFaultFail  fail with IOError, no bytes written
///   n >= 0      (writes only) torn write: persist only the first n bytes,
///               then fail with IOError — simulates a crash mid-write
using FaultHook = std::function<int(const char* op, uint32_t page_id)>;
inline constexpr int kFaultNone = -1;
inline constexpr int kFaultFail = -2;

/// \brief Allocates, reads and writes kPageSize pages in a single file.
///
/// Freed pages go on an in-memory free list and are recycled by Allocate();
/// this keeps reorganization-heavy workloads from growing the file without
/// bound. Structural operations (Open/Close/Allocate/Free) are single-writer
/// and must be externally serialized (the BufferPool calls them under its
/// mutex); Read/Write are safe to issue concurrently — they are plain
/// positioned syscalls — which is what lets buffer-pool misses overlap.
class Pager {
 public:
  Pager() = default;
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or creates) the backing file. By default any existing contents
  /// are truncated (scratch/benchmark usage); with `preserve_existing` the
  /// file is opened as-is and num_pages() reflects its current size — the
  /// recovery path of the persist subsystem.
  Status Open(const std::string& path, bool preserve_existing = false);

  /// Closes the file; further operations fail.
  Status Close();

  /// Allocates a page id (recycling freed pages first).
  StatusOr<uint32_t> Allocate();

  /// Returns a page to the free list (or to the quarantine when enabled).
  void Free(uint32_t page_id);

  /// Checkpointed databases only: freed pages go into a quarantine instead
  /// of the free list, so pages still referenced by the last durable
  /// checkpoint image are never recycled (and overwritten) before the next
  /// checkpoint commits. ReleaseQuarantinedPages() moves them to the free
  /// list — called at each checkpoint's commit point, when the image that
  /// referenced them has been superseded.
  void EnableFreeQuarantine() { quarantine_frees_ = true; }
  void ReleaseQuarantinedPages() {
    free_list_.insert(free_list_.end(), quarantined_.begin(), quarantined_.end());
    quarantined_.clear();
  }
  size_t quarantined_count() const { return quarantined_.size(); }

  /// Recovery only: replaces the free list wholesale with the set computed
  /// by the checkpoint subsystem's mark-and-sweep over the durable image.
  void SetFreeList(std::vector<uint32_t> pages) { free_list_ = std::move(pages); }
  const std::vector<uint32_t>& free_list() const { return free_list_; }
  const std::vector<uint32_t>& quarantined() const { return quarantined_; }

  /// Reads page `page_id` into `buf` (must hold kPageSize bytes).
  Status Read(uint32_t page_id, char* buf);

  /// Writes kPageSize bytes from `buf` to page `page_id`.
  Status Write(uint32_t page_id, const char* buf);

  /// Flushes OS buffers (fdatasync).
  Status Sync();

  /// Truncates the file to `num_pages` pages (compaction).
  Status TruncateTo(uint32_t num_pages);

  /// Installs a fault hook for crash-injection tests (nullptr to clear).
  /// Atomically swapped: tests arm hooks while the background writer /
  /// checkpoint daemon issue concurrent I/O.
  void SetFaultHook(FaultHook hook) {
    auto ptr = hook ? std::make_shared<const FaultHook>(std::move(hook))
                    : std::shared_ptr<const FaultHook>();
    std::atomic_store_explicit(&fault_hook_, std::move(ptr),
                               std::memory_order_release);
  }
  std::shared_ptr<const FaultHook> fault_hook() const {
    return std::atomic_load_explicit(&fault_hook_, std::memory_order_acquire);
  }

  uint32_t num_pages() const { return num_pages_.load(std::memory_order_acquire); }
  size_t free_list_size() const { return free_list_.size(); }
  const PagerStats& stats() const { return stats_; }
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::atomic<uint32_t> num_pages_{0};
  std::vector<uint32_t> free_list_;
  bool quarantine_frees_ = false;
  std::vector<uint32_t> quarantined_;
  std::shared_ptr<const FaultHook> fault_hook_;
  PagerStats stats_;
};

/// Creates a unique temporary file path under $TMPDIR (or /tmp) with the
/// given name hint. Used by tests and benchmarks.
std::string TempFilePath(const std::string& hint);

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_PAGER_H_
