// On-disk B+-tree keyed on (double, uint64) with uint64 values, stored in
// pages managed by the BufferPool.
//
// The Hazy on-disk architecture keeps its scratch table H clustered on eps
// and maintains this tree as the "clustered B+-tree index on t.eps"
// (Section 3.2.2): range scans over [lw, hw] locate exactly the tuples whose
// labels may have flipped. The uint64 key component breaks ties between
// equal eps values (we use the entity id), and the value is a packed RID.
//
// Supported: point insert, exact-key delete, lower-bound seek + forward
// iteration, and bottom-up bulk load from sorted input (used at
// reorganization time). Nodes split but never merge: deletion leaves nodes
// underfull, which matches production B-trees that reclaim space during the
// next rebuild — and Hazy rebuilds wholesale at every reorganization.

#ifndef HAZY_STORAGE_BPTREE_H_
#define HAZY_STORAGE_BPTREE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace hazy::storage {

/// Composite B+-tree key: primary double plus a tie-breaking uint64.
struct BtKey {
  double k = 0.0;
  uint64_t tie = 0;

  friend bool operator<(const BtKey& a, const BtKey& b) {
    if (a.k != b.k) return a.k < b.k;
    return a.tie < b.tie;
  }
  friend bool operator==(const BtKey& a, const BtKey& b) {
    return a.k == b.k && a.tie == b.tie;
  }
  friend bool operator<=(const BtKey& a, const BtKey& b) { return !(b < a); }

  /// Smallest possible key (used to seek to the first entry).
  static BtKey Min() { return BtKey{-std::numeric_limits<double>::infinity(), 0}; }
};

namespace bptree_detail {

// Node layout. Header: type (u16), count (u16), next (u32, leaf sibling).
// In the header (not bptree.cc) so ScanFrom below can iterate a leaf's
// entry array directly in a template body.
inline constexpr size_t kTypeOff = 0;
inline constexpr size_t kCountOff = 2;
inline constexpr size_t kNextOff = 4;
inline constexpr size_t kHeaderSize = 8;

inline constexpr uint16_t kLeaf = 1;
inline constexpr uint16_t kInternal = 2;

// Leaf entries: key.k (8) + key.tie (8) + value (8).
inline constexpr size_t kLeafEntrySize = 24;
inline constexpr size_t kLeafCapacity = (kPageUsableSize - kHeaderSize) / kLeafEntrySize;

// Internal: child0 (u32) then entries key.k (8) + key.tie (8) + child (u32).
inline constexpr size_t kChild0Off = kHeaderSize;
inline constexpr size_t kInternalEntriesOff = kChild0Off + 4;
inline constexpr size_t kInternalEntrySize = 20;
inline constexpr size_t kInternalCapacity =
    (kPageUsableSize - kInternalEntriesOff) / kInternalEntrySize;

inline uint16_t NodeType(const char* p) { return DecodeFixed16(p + kTypeOff); }
inline uint16_t NodeCount(const char* p) { return DecodeFixed16(p + kCountOff); }
inline uint32_t NodeNext(const char* p) { return DecodeFixed32(p + kNextOff); }
inline void SetNodeType(char* p, uint16_t t) { EncodeFixed16(p + kTypeOff, t); }
inline void SetNodeCount(char* p, uint16_t c) { EncodeFixed16(p + kCountOff, c); }
inline void SetNodeNext(char* p, uint32_t n) { EncodeFixed32(p + kNextOff, n); }

inline char* LeafEntry(char* p, size_t i) { return p + kHeaderSize + i * kLeafEntrySize; }
inline const char* LeafEntry(const char* p, size_t i) {
  return p + kHeaderSize + i * kLeafEntrySize;
}

inline BtKey LeafKey(const char* p, size_t i) {
  const char* e = LeafEntry(p, i);
  return BtKey{DecodeDouble(e), DecodeFixed64(e + 8)};
}
inline uint64_t LeafValue(const char* p, size_t i) {
  return DecodeFixed64(LeafEntry(p, i) + 16);
}

// First index in the leaf whose key is >= `key` (binary search).
inline uint16_t LeafLowerBound(const char* p, const BtKey& key) {
  uint16_t lo = 0, hi = NodeCount(p);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (LeafKey(p, mid) < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace bptree_detail

/// \brief B+-tree over (BtKey -> uint64).
class BPlusTree {
 public:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Allocates an empty root leaf. Must be called once before use.
  Status Create();

  /// Inserts a (key, value) entry. Duplicate full keys are allowed but the
  /// engines always use a unique tie component.
  Status Insert(const BtKey& key, uint64_t value);

  /// Removes the entry with exactly this key. NotFound if absent.
  Status Delete(const BtKey& key);

  /// Looks up the value for exactly this key.
  StatusOr<uint64_t> Get(const BtKey& key) const;

  /// \brief Forward iterator positioned by SeekGE.
  ///
  /// Holds a pin on the current leaf page. Pattern:
  ///   auto it = tree.SeekGE(k);
  ///   for (; it->Valid(); it->Next()) { it->key(); it->value(); }
  class Iterator {
   public:
    bool Valid() const { return handle_.valid(); }
    const BtKey& key() const { return key_; }
    uint64_t value() const { return value_; }
    Status Next();

   private:
    friend class BPlusTree;
    Iterator() = default;
    void LoadCurrent();

    const BPlusTree* tree_ = nullptr;
    PageHandle handle_;
    uint16_t idx_ = 0;
    BtKey key_;
    uint64_t value_ = 0;
  };

  /// Positions an iterator at the first entry with key >= `key`.
  StatusOr<Iterator> SeekGE(const BtKey& key) const;

  /// Leaf-array range scan: starting at the first entry with key >= `lo`,
  /// calls fn(key, value) for each entry in order until fn returns false or
  /// the tree is exhausted.
  ///
  /// This is the fast path for the hazy-OD window scans: where the Iterator
  /// pays a pin move, bounds re-check and decode per Next(), this decodes
  /// each leaf's packed key/rid array directly — one Fetch and one
  /// lower-bound per leaf page, then a tight pointer walk over its entries.
  /// `fn` must not touch the tree or its buffer pool (the leaf stays pinned
  /// across the callbacks).
  template <typename Fn>
  Status ScanFrom(const BtKey& lo, Fn&& fn) const {
    namespace bd = bptree_detail;
    if (root_ == kInvalidPageId) return Status::InvalidArgument("tree not created");
    HAZY_ASSIGN_OR_RETURN(uint32_t pid, FindLeaf(lo));
    bool first = true;
    while (pid != kInvalidPageId) {
      HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pid));
      const char* p = h.data();
      const uint16_t count = bd::NodeCount(p);
      uint16_t i = first ? bd::LeafLowerBound(p, lo) : 0;
      first = false;
      const char* e = bd::LeafEntry(p, i);
      for (; i < count; ++i, e += bd::kLeafEntrySize) {
        if (!fn(BtKey{DecodeDouble(e), DecodeFixed64(e + 8)}, DecodeFixed64(e + 16))) {
          return Status::OK();
        }
      }
      pid = bd::NodeNext(p);
    }
    return Status::OK();
  }

  /// Rebuilds the tree from sorted (key, value) pairs, replacing all current
  /// contents. Leaves are packed to `fill` fraction (default 1.0: the tree
  /// is rebuilt at every reorganization, so dense packing is optimal).
  Status BulkLoad(const std::vector<std::pair<BtKey, uint64_t>>& sorted, double fill = 1.0);

  /// Frees every node page. The tree is unusable until Create().
  Status Destroy();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_pages() const { return num_pages_; }
  int height() const { return height_; }

  /// Exhaustively checks structural invariants (ordering inside nodes,
  /// sorted leaf chain, separator consistency, entry count). For tests.
  Status Verify() const;

 private:
  struct SplitResult {
    BtKey separator;
    uint32_t right_page;
  };

  Status InsertRecursive(uint32_t page_id, const BtKey& key, uint64_t value,
                         std::optional<SplitResult>* split);
  StatusOr<uint32_t> FindLeaf(const BtKey& key) const;
  Status CollectPages(uint32_t page_id, std::vector<uint32_t>* pages) const;
  Status VerifyNode(uint32_t page_id, const BtKey* lo, const BtKey* hi, int depth,
                    int* leaf_depth, uint64_t* entries) const;

  BufferPool* pool_;
  uint32_t root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint64_t num_pages_ = 0;
  int height_ = 0;
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_BPTREE_H_
