// On-disk B+-tree keyed on (double, uint64) with uint64 values, stored in
// pages managed by the BufferPool.
//
// The Hazy on-disk architecture keeps its scratch table H clustered on eps
// and maintains this tree as the "clustered B+-tree index on t.eps"
// (Section 3.2.2): range scans over [lw, hw] locate exactly the tuples whose
// labels may have flipped. The uint64 key component breaks ties between
// equal eps values (we use the entity id), and the value is a packed RID.
//
// Supported: point insert, exact-key delete, lower-bound seek + forward
// iteration, and bottom-up bulk load from sorted input (used at
// reorganization time). Nodes split but never merge: deletion leaves nodes
// underfull, which matches production B-trees that reclaim space during the
// next rebuild — and Hazy rebuilds wholesale at every reorganization.

#ifndef HAZY_STORAGE_BPTREE_H_
#define HAZY_STORAGE_BPTREE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace hazy::storage {

/// Composite B+-tree key: primary double plus a tie-breaking uint64.
struct BtKey {
  double k = 0.0;
  uint64_t tie = 0;

  friend bool operator<(const BtKey& a, const BtKey& b) {
    if (a.k != b.k) return a.k < b.k;
    return a.tie < b.tie;
  }
  friend bool operator==(const BtKey& a, const BtKey& b) {
    return a.k == b.k && a.tie == b.tie;
  }
  friend bool operator<=(const BtKey& a, const BtKey& b) { return !(b < a); }

  /// Smallest possible key (used to seek to the first entry).
  static BtKey Min() { return BtKey{-std::numeric_limits<double>::infinity(), 0}; }
};

/// \brief B+-tree over (BtKey -> uint64).
class BPlusTree {
 public:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Allocates an empty root leaf. Must be called once before use.
  Status Create();

  /// Inserts a (key, value) entry. Duplicate full keys are allowed but the
  /// engines always use a unique tie component.
  Status Insert(const BtKey& key, uint64_t value);

  /// Removes the entry with exactly this key. NotFound if absent.
  Status Delete(const BtKey& key);

  /// Looks up the value for exactly this key.
  StatusOr<uint64_t> Get(const BtKey& key) const;

  /// \brief Forward iterator positioned by SeekGE.
  ///
  /// Holds a pin on the current leaf page. Pattern:
  ///   auto it = tree.SeekGE(k);
  ///   for (; it->Valid(); it->Next()) { it->key(); it->value(); }
  class Iterator {
   public:
    bool Valid() const { return handle_.valid(); }
    const BtKey& key() const { return key_; }
    uint64_t value() const { return value_; }
    Status Next();

   private:
    friend class BPlusTree;
    Iterator() = default;
    void LoadCurrent();

    const BPlusTree* tree_ = nullptr;
    PageHandle handle_;
    uint16_t idx_ = 0;
    BtKey key_;
    uint64_t value_ = 0;
  };

  /// Positions an iterator at the first entry with key >= `key`.
  StatusOr<Iterator> SeekGE(const BtKey& key) const;

  /// Rebuilds the tree from sorted (key, value) pairs, replacing all current
  /// contents. Leaves are packed to `fill` fraction (default 1.0: the tree
  /// is rebuilt at every reorganization, so dense packing is optimal).
  Status BulkLoad(const std::vector<std::pair<BtKey, uint64_t>>& sorted, double fill = 1.0);

  /// Frees every node page. The tree is unusable until Create().
  Status Destroy();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_pages() const { return num_pages_; }
  int height() const { return height_; }

  /// Exhaustively checks structural invariants (ordering inside nodes,
  /// sorted leaf chain, separator consistency, entry count). For tests.
  Status Verify() const;

 private:
  struct SplitResult {
    BtKey separator;
    uint32_t right_page;
  };

  Status InsertRecursive(uint32_t page_id, const BtKey& key, uint64_t value,
                         std::optional<SplitResult>* split);
  StatusOr<uint32_t> FindLeaf(const BtKey& key) const;
  Status CollectPages(uint32_t page_id, std::vector<uint32_t>* pages) const;
  Status VerifyNode(uint32_t page_id, const BtKey* lo, const BtKey* hi, int depth,
                    int* leaf_depth, uint64_t* entries) const;

  BufferPool* pool_;
  uint32_t root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint64_t num_pages_ = 0;
  int height_ = 0;
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_BPTREE_H_
