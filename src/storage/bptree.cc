#include "storage/bptree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace hazy::storage {

// Shared node-layout accessors live in bptree.h (bptree_detail) so the
// header's ScanFrom template can decode leaf arrays directly.
using namespace bptree_detail;

namespace {

void SetLeafEntry(char* p, size_t i, const BtKey& k, uint64_t v) {
  char* e = LeafEntry(p, i);
  EncodeDouble(e, k.k);
  EncodeFixed64(e + 8, k.tie);
  EncodeFixed64(e + 16, v);
}

char* InternalEntry(char* p, size_t i) {
  return p + kInternalEntriesOff + i * kInternalEntrySize;
}
const char* InternalEntry(const char* p, size_t i) {
  return p + kInternalEntriesOff + i * kInternalEntrySize;
}

BtKey InternalKey(const char* p, size_t i) {
  const char* e = InternalEntry(p, i);
  return BtKey{DecodeDouble(e), DecodeFixed64(e + 8)};
}
uint32_t InternalChild(const char* p, size_t i) {
  // Child index i in [0, count]: child 0 lives at kChild0Off, child i > 0 is
  // stored with key i-1.
  if (i == 0) return DecodeFixed32(p + kChild0Off);
  return DecodeFixed32(InternalEntry(p, i - 1) + 16);
}
void SetInternalChild0(char* p, uint32_t child) { EncodeFixed32(p + kChild0Off, child); }
void SetInternalEntry(char* p, size_t i, const BtKey& k, uint32_t child) {
  char* e = InternalEntry(p, i);
  EncodeDouble(e, k.k);
  EncodeFixed64(e + 8, k.tie);
  EncodeFixed32(e + 16, child);
}

// Child slot to descend into: number of separator keys <= `key`.
uint16_t InternalChildIndex(const char* p, const BtKey& key) {
  uint16_t lo = 0, hi = NodeCount(p);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (InternalKey(p, mid) <= key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Status BPlusTree::Create() {
  if (root_ != kInvalidPageId) return Status::InvalidArgument("tree already created");
  HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
  std::memset(h.data(), 0, kPageSize);
  SetNodeType(h.data(), kLeaf);
  SetNodeCount(h.data(), 0);
  SetNodeNext(h.data(), kInvalidPageId);
  h.MarkDirty();
  root_ = h.page_id();
  num_entries_ = 0;
  num_pages_ = 1;
  height_ = 1;
  return Status::OK();
}

Status BPlusTree::Insert(const BtKey& key, uint64_t value) {
  if (root_ == kInvalidPageId) return Status::InvalidArgument("tree not created");
  std::optional<SplitResult> split;
  HAZY_RETURN_NOT_OK(InsertRecursive(root_, key, value, &split));
  if (split.has_value()) {
    // Root split: grow the tree by one level.
    HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    std::memset(h.data(), 0, kPageSize);
    SetNodeType(h.data(), kInternal);
    SetNodeCount(h.data(), 1);
    SetNodeNext(h.data(), kInvalidPageId);
    SetInternalChild0(h.data(), root_);
    SetInternalEntry(h.data(), 0, split->separator, split->right_page);
    h.MarkDirty();
    root_ = h.page_id();
    ++num_pages_;
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Status BPlusTree::InsertRecursive(uint32_t page_id, const BtKey& key, uint64_t value,
                                  std::optional<SplitResult>* split) {
  split->reset();
  HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page_id));
  char* p = h.data();

  if (NodeType(p) == kLeaf) {
    uint16_t count = NodeCount(p);
    if (count < kLeafCapacity) {
      uint16_t pos = LeafLowerBound(p, key);
      std::memmove(LeafEntry(p, pos + 1), LeafEntry(p, pos),
                   static_cast<size_t>(count - pos) * kLeafEntrySize);
      SetLeafEntry(p, pos, key, value);
      SetNodeCount(p, static_cast<uint16_t>(count + 1));
      h.MarkDirty();
      return Status::OK();
    }
    // Split the leaf, then insert into the proper half.
    HAZY_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    char* rp = rh.data();
    std::memset(rp, 0, kPageSize);
    SetNodeType(rp, kLeaf);
    uint16_t mid = static_cast<uint16_t>(count / 2);
    uint16_t right_n = static_cast<uint16_t>(count - mid);
    std::memcpy(LeafEntry(rp, 0), LeafEntry(p, mid),
                static_cast<size_t>(right_n) * kLeafEntrySize);
    SetNodeCount(rp, right_n);
    SetNodeNext(rp, NodeNext(p));
    SetNodeCount(p, mid);
    SetNodeNext(p, rh.page_id());
    ++num_pages_;

    BtKey sep = LeafKey(rp, 0);
    char* target = (key < sep) ? p : rp;
    uint16_t tcount = NodeCount(target);
    uint16_t pos = LeafLowerBound(target, key);
    std::memmove(LeafEntry(target, pos + 1), LeafEntry(target, pos),
                 static_cast<size_t>(tcount - pos) * kLeafEntrySize);
    SetLeafEntry(target, pos, key, value);
    SetNodeCount(target, static_cast<uint16_t>(tcount + 1));
    h.MarkDirty();
    rh.MarkDirty();
    *split = SplitResult{sep, rh.page_id()};
    return Status::OK();
  }

  // Internal node: descend.
  uint16_t child_idx = InternalChildIndex(p, key);
  uint32_t child = InternalChild(p, child_idx);
  // Release our pin while recursing to keep at most two pages pinned.
  h.Release();
  std::optional<SplitResult> child_split;
  HAZY_RETURN_NOT_OK(InsertRecursive(child, key, value, &child_split));
  if (!child_split.has_value()) return Status::OK();

  HAZY_ASSIGN_OR_RETURN(PageHandle h2, pool_->Fetch(page_id));
  p = h2.data();
  uint16_t count = NodeCount(p);
  if (count < kInternalCapacity) {
    // Shift entries right of child_idx and insert the new separator there.
    std::memmove(InternalEntry(p, child_idx + 1), InternalEntry(p, child_idx),
                 static_cast<size_t>(count - child_idx) * kInternalEntrySize);
    SetInternalEntry(p, child_idx, child_split->separator, child_split->right_page);
    SetNodeCount(p, static_cast<uint16_t>(count + 1));
    h2.MarkDirty();
    return Status::OK();
  }

  // Split the internal node. Materialize entries, insert, redistribute.
  struct Entry {
    BtKey key;
    uint32_t child;
  };
  std::vector<Entry> entries;
  entries.reserve(count + 1);
  for (uint16_t i = 0; i < count; ++i) {
    entries.push_back({InternalKey(p, i), InternalChild(p, i + 1)});
  }
  entries.insert(entries.begin() + child_idx,
                 Entry{child_split->separator, child_split->right_page});
  uint32_t child0 = InternalChild(p, 0);

  size_t total = entries.size();
  size_t mid = total / 2;  // entries[mid].key is promoted
  HAZY_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  char* rp = rh.data();
  std::memset(rp, 0, kPageSize);
  SetNodeType(rp, kInternal);
  SetNodeNext(rp, kInvalidPageId);
  SetInternalChild0(rp, entries[mid].child);
  uint16_t right_n = 0;
  for (size_t i = mid + 1; i < total; ++i) {
    SetInternalEntry(rp, right_n++, entries[i].key, entries[i].child);
  }
  SetNodeCount(rp, right_n);

  SetInternalChild0(p, child0);
  for (size_t i = 0; i < mid; ++i) {
    SetInternalEntry(p, i, entries[i].key, entries[i].child);
  }
  SetNodeCount(p, static_cast<uint16_t>(mid));
  h2.MarkDirty();
  rh.MarkDirty();
  ++num_pages_;
  *split = SplitResult{entries[mid].key, rh.page_id()};
  return Status::OK();
}

StatusOr<uint32_t> BPlusTree::FindLeaf(const BtKey& key) const {
  uint32_t pid = root_;
  for (;;) {
    HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pid));
    const char* p = h.data();
    if (NodeType(p) == kLeaf) return pid;
    pid = InternalChild(p, InternalChildIndex(p, key));
  }
}

Status BPlusTree::Delete(const BtKey& key) {
  if (root_ == kInvalidPageId) return Status::InvalidArgument("tree not created");
  HAZY_ASSIGN_OR_RETURN(uint32_t leaf, FindLeaf(key));
  HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(leaf));
  char* p = h.data();
  uint16_t count = NodeCount(p);
  uint16_t pos = LeafLowerBound(p, key);
  if (pos >= count || !(LeafKey(p, pos) == key)) {
    return Status::NotFound("key not in tree");
  }
  std::memmove(LeafEntry(p, pos), LeafEntry(p, pos + 1),
               static_cast<size_t>(count - pos - 1) * kLeafEntrySize);
  SetNodeCount(p, static_cast<uint16_t>(count - 1));
  h.MarkDirty();
  --num_entries_;
  return Status::OK();
}

StatusOr<uint64_t> BPlusTree::Get(const BtKey& key) const {
  HAZY_ASSIGN_OR_RETURN(uint32_t leaf, FindLeaf(key));
  HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(leaf));
  const char* p = h.data();
  uint16_t pos = LeafLowerBound(p, key);
  if (pos >= NodeCount(p) || !(LeafKey(p, pos) == key)) {
    return Status::NotFound("key not in tree");
  }
  return LeafValue(p, pos);
}

void BPlusTree::Iterator::LoadCurrent() {
  const char* p = handle_.data();
  key_ = LeafKey(p, idx_);
  value_ = LeafValue(p, idx_);
}

Status BPlusTree::Iterator::Next() {
  HAZY_CHECK(Valid()) << "Next() on invalid iterator";
  const char* p = handle_.data();
  ++idx_;
  while (idx_ >= NodeCount(p)) {
    uint32_t next = NodeNext(p);
    handle_.Release();
    if (next == kInvalidPageId) return Status::OK();  // now invalid
    HAZY_ASSIGN_OR_RETURN(handle_, tree_->pool_->Fetch(next));
    p = handle_.data();
    idx_ = 0;
  }
  LoadCurrent();
  return Status::OK();
}

StatusOr<BPlusTree::Iterator> BPlusTree::SeekGE(const BtKey& key) const {
  if (root_ == kInvalidPageId) return Status::InvalidArgument("tree not created");
  Iterator it;
  it.tree_ = this;
  HAZY_ASSIGN_OR_RETURN(uint32_t leaf, FindLeaf(key));
  HAZY_ASSIGN_OR_RETURN(it.handle_, pool_->Fetch(leaf));
  const char* p = it.handle_.data();
  it.idx_ = LeafLowerBound(p, key);
  while (it.idx_ >= NodeCount(p)) {
    uint32_t next = NodeNext(p);
    it.handle_.Release();
    if (next == kInvalidPageId) return it;  // exhausted: invalid iterator
    HAZY_ASSIGN_OR_RETURN(it.handle_, pool_->Fetch(next));
    p = it.handle_.data();
    it.idx_ = 0;
  }
  it.LoadCurrent();
  return it;
}

Status BPlusTree::BulkLoad(const std::vector<std::pair<BtKey, uint64_t>>& sorted,
                           double fill) {
  HAZY_RETURN_NOT_OK(Destroy());
  fill = std::clamp(fill, 0.1, 1.0);
  const size_t per_leaf =
      std::max<size_t>(1, static_cast<size_t>(static_cast<double>(kLeafCapacity) * fill));
  const size_t per_internal = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(kInternalCapacity) * fill));

  if (sorted.empty()) return Create();

  // Level 0: pack leaves left to right, chaining siblings.
  struct NodeRef {
    BtKey first_key;
    uint32_t page;
  };
  std::vector<NodeRef> level;
  uint32_t prev_leaf = kInvalidPageId;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t n = std::min(per_leaf, sorted.size() - i);
    // Avoid a pathologically small trailing leaf: rebalance the last two.
    if (sorted.size() - i - n > 0 && sorted.size() - i - n < per_leaf / 2) {
      n = (sorted.size() - i + 1) / 2;
    }
    HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    char* p = h.data();
    std::memset(p, 0, kPageSize);
    SetNodeType(p, kLeaf);
    SetNodeCount(p, static_cast<uint16_t>(n));
    SetNodeNext(p, kInvalidPageId);
    for (size_t j = 0; j < n; ++j) {
      SetLeafEntry(p, j, sorted[i + j].first, sorted[i + j].second);
    }
    h.MarkDirty();
    ++num_pages_;
    if (prev_leaf != kInvalidPageId) {
      HAZY_ASSIGN_OR_RETURN(PageHandle ph, pool_->Fetch(prev_leaf));
      SetNodeNext(ph.data(), h.page_id());
      ph.MarkDirty();
    }
    prev_leaf = h.page_id();
    level.push_back({sorted[i].first, h.page_id()});
    i += n;
  }
  height_ = 1;

  // Build internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<NodeRef> parent;
    size_t j = 0;
    while (j < level.size()) {
      size_t n = std::min(per_internal + 1, level.size() - j);  // n children
      if (level.size() - j - n > 0 && level.size() - j - n < 2) {
        n = (level.size() - j + 1) / 2;
      }
      HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
      char* p = h.data();
      std::memset(p, 0, kPageSize);
      SetNodeType(p, kInternal);
      SetNodeNext(p, kInvalidPageId);
      SetInternalChild0(p, level[j].page);
      for (size_t c = 1; c < n; ++c) {
        SetInternalEntry(p, c - 1, level[j + c].first_key, level[j + c].page);
      }
      SetNodeCount(p, static_cast<uint16_t>(n - 1));
      h.MarkDirty();
      ++num_pages_;
      parent.push_back({level[j].first_key, h.page_id()});
      j += n;
    }
    level = std::move(parent);
    ++height_;
  }
  root_ = level[0].page;
  num_entries_ = sorted.size();
  return Status::OK();
}

Status BPlusTree::CollectPages(uint32_t page_id, std::vector<uint32_t>* pages) const {
  pages->push_back(page_id);
  HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page_id));
  const char* p = h.data();
  if (NodeType(p) == kInternal) {
    uint16_t count = NodeCount(p);
    std::vector<uint32_t> children;
    for (uint16_t i = 0; i <= count; ++i) children.push_back(InternalChild(p, i));
    h.Release();
    for (uint32_t c : children) HAZY_RETURN_NOT_OK(CollectPages(c, pages));
  }
  return Status::OK();
}

Status BPlusTree::Destroy() {
  if (root_ == kInvalidPageId) return Status::OK();
  std::vector<uint32_t> pages;
  HAZY_RETURN_NOT_OK(CollectPages(root_, &pages));
  for (uint32_t pid : pages) pool_->FreePage(pid);
  root_ = kInvalidPageId;
  num_entries_ = 0;
  num_pages_ = 0;
  height_ = 0;
  return Status::OK();
}

Status BPlusTree::VerifyNode(uint32_t page_id, const BtKey* lo, const BtKey* hi,
                             int depth, int* leaf_depth, uint64_t* entries) const {
  HAZY_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page_id));
  const char* p = h.data();
  uint16_t count = NodeCount(p);
  if (NodeType(p) == kLeaf) {
    if (*leaf_depth < 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    for (uint16_t i = 0; i < count; ++i) {
      BtKey k = LeafKey(p, i);
      if (i > 0 && k < LeafKey(p, i - 1)) return Status::Corruption("leaf out of order");
      if (lo != nullptr && k < *lo) return Status::Corruption("leaf key below bound");
      if (hi != nullptr && !(k < *hi)) return Status::Corruption("leaf key above bound");
    }
    *entries += count;
    return Status::OK();
  }
  // Internal node.
  struct ChildRange {
    uint32_t page;
    std::optional<BtKey> lo, hi;
  };
  std::vector<ChildRange> children;
  for (uint16_t i = 0; i <= count; ++i) {
    ChildRange cr;
    cr.page = InternalChild(p, i);
    if (i > 0) cr.lo = InternalKey(p, i - 1);
    if (i < count) cr.hi = InternalKey(p, i);
    children.push_back(cr);
  }
  for (uint16_t i = 1; i < count; ++i) {
    if (InternalKey(p, i) < InternalKey(p, i - 1)) {
      return Status::Corruption("internal keys out of order");
    }
  }
  h.Release();
  for (const auto& cr : children) {
    const BtKey* clo = cr.lo ? &*cr.lo : lo;
    const BtKey* chi = cr.hi ? &*cr.hi : hi;
    HAZY_RETURN_NOT_OK(VerifyNode(cr.page, clo, chi, depth + 1, leaf_depth, entries));
  }
  return Status::OK();
}

Status BPlusTree::Verify() const {
  if (root_ == kInvalidPageId) return Status::InvalidArgument("tree not created");
  int leaf_depth = -1;
  uint64_t entries = 0;
  HAZY_RETURN_NOT_OK(VerifyNode(root_, nullptr, nullptr, 0, &leaf_depth, &entries));
  if (entries != num_entries_) {
    return Status::Corruption(StrFormat("entry count mismatch: tree has %llu, expected %llu",
                                        static_cast<unsigned long long>(entries),
                                        static_cast<unsigned long long>(num_entries_)));
  }
  // The leaf chain must cover all entries in sorted order.
  HAZY_ASSIGN_OR_RETURN(Iterator it, SeekGE(BtKey::Min()));
  uint64_t seen = 0;
  std::optional<BtKey> prev;
  while (it.Valid()) {
    if (prev.has_value() && it.key() < *prev) {
      return Status::Corruption("leaf chain out of order");
    }
    prev = it.key();
    ++seen;
    HAZY_RETURN_NOT_OK(it.Next());
  }
  if (seen != num_entries_) {
    return Status::Corruption("leaf chain does not cover all entries");
  }
  return Status::OK();
}

}  // namespace hazy::storage
