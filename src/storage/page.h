// Slotted-page layout (PostgreSQL-style line pointers) over raw 8 KiB
// buffers. The page itself is just bytes; SlottedPage provides the accessors.
//
// Layout:
//   [PageHeader (12 B)] [slot 0][slot 1]... -> grows up
//   ...free space...
//   ...cell data... <- grows down from the end of the page
//
// A record is addressed by a RID = (page_id, slot). Deleting a record clears
// its slot but does not compact the page: the Hazy workloads are
// append-mostly with in-place same-size updates, and whole structures are
// rebuilt at reorganization time, so fragmentation is reclaimed wholesale.
//
// The trailing 8 bytes of every page — slotted or raw — are reserved for the
// page LSN: the WAL position that must be durable before this page image may
// reach the database file (storage/wal.h). The buffer pool stamps it at
// write-back; structures lay their data out inside kPageUsableSize.

#ifndef HAZY_STORAGE_PAGE_H_
#define HAZY_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/logging.h"
#include "storage/coding.h"

namespace hazy::storage {

inline constexpr size_t kPageSize = 8192;
inline constexpr uint32_t kInvalidPageId = 0xFFFFFFFFu;

/// Every page reserves its last 8 bytes for the page LSN (write-ahead-log
/// ordering stamp); page-resident data structures must stay within this.
inline constexpr size_t kPageLsnOff = kPageSize - 8;
inline constexpr size_t kPageUsableSize = kPageLsnOff;

inline uint64_t PageLsn(const char* page) { return DecodeFixed64(page + kPageLsnOff); }
inline void SetPageLsn(char* page, uint64_t lsn) { EncodeFixed64(page + kPageLsnOff, lsn); }

/// Identifies a record: which page and which slot within it.
struct Rid {
  uint32_t page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const Rid& o) const { return page_id == o.page_id && slot == o.slot; }
  bool operator!=(const Rid& o) const { return !(*this == o); }

  /// Packs into 8 bytes for storage inside index entries.
  uint64_t Pack() const { return (static_cast<uint64_t>(page_id) << 16) | slot; }
  static Rid Unpack(uint64_t v) {
    Rid r;
    r.page_id = static_cast<uint32_t>(v >> 16);
    r.slot = static_cast<uint16_t>(v & 0xFFFF);
    return r;
  }
};

/// \brief Accessors over one slotted page buffer (does not own the bytes).
class SlottedPage {
 public:
  // Header field offsets.
  static constexpr size_t kNextPageOff = 0;   // uint32: heap-chain link
  static constexpr size_t kSlotCountOff = 4;  // uint16
  static constexpr size_t kFreeStartOff = 6;  // uint16: end of slot array
  static constexpr size_t kFreeEndOff = 8;    // uint16: start of cell area
  static constexpr size_t kFlagsOff = 10;     // uint16
  static constexpr size_t kHeaderSize = 12;
  static constexpr size_t kSlotSize = 4;  // uint16 offset + uint16 size

  /// Largest record that can ever fit on one (empty) page.
  static constexpr size_t kMaxRecordSize = kPageUsableSize - kHeaderSize - kSlotSize;

  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats an empty page in place.
  void Init() {
    std::memset(data_, 0, kPageSize);
    EncodeFixed32(data_ + kNextPageOff, kInvalidPageId);
    EncodeFixed16(data_ + kSlotCountOff, 0);
    EncodeFixed16(data_ + kFreeStartOff, kHeaderSize);
    EncodeFixed16(data_ + kFreeEndOff, kPageUsableSize);
  }

  uint32_t next_page() const { return DecodeFixed32(data_ + kNextPageOff); }
  void set_next_page(uint32_t pid) { EncodeFixed32(data_ + kNextPageOff, pid); }

  uint16_t slot_count() const { return DecodeFixed16(data_ + kSlotCountOff); }

  size_t FreeSpace() const {
    return DecodeFixed16(data_ + kFreeEndOff) - DecodeFixed16(data_ + kFreeStartOff);
  }

  /// True if a record of `size` bytes fits (including its new slot).
  bool HasRoomFor(size_t size) const { return FreeSpace() >= size + kSlotSize; }

  /// Inserts a record; returns its slot number, or -1 if the page is full.
  int Insert(std::string_view rec) {
    if (!HasRoomFor(rec.size())) return -1;
    uint16_t count = slot_count();
    uint16_t free_end = DecodeFixed16(data_ + kFreeEndOff);
    uint16_t off = static_cast<uint16_t>(free_end - rec.size());
    std::memcpy(data_ + off, rec.data(), rec.size());
    char* slot = SlotPtr(count);
    EncodeFixed16(slot, off);
    EncodeFixed16(slot + 2, static_cast<uint16_t>(rec.size()));
    EncodeFixed16(data_ + kSlotCountOff, static_cast<uint16_t>(count + 1));
    EncodeFixed16(data_ + kFreeStartOff,
                  static_cast<uint16_t>(kHeaderSize + (count + 1) * kSlotSize));
    EncodeFixed16(data_ + kFreeEndOff, off);
    return count;
  }

  /// Returns the record bytes at `slot`, or empty view if deleted/invalid.
  std::string_view Get(uint16_t slot) const {
    if (slot >= slot_count()) return {};
    const char* s = SlotPtr(slot);
    uint16_t off = DecodeFixed16(s);
    uint16_t size = DecodeFixed16(s + 2);
    if (off == 0) return {};  // deleted
    return std::string_view(data_ + off, size);
  }

  /// Mutable view of the record (for same-size in-place updates, the §B.1
  /// "update without copy" fast path).
  char* GetMutable(uint16_t slot, uint16_t* size) {
    if (slot >= slot_count()) return nullptr;
    char* s = SlotPtr(slot);
    uint16_t off = DecodeFixed16(s);
    if (off == 0) return nullptr;
    *size = DecodeFixed16(s + 2);
    return data_ + off;
  }

  /// Marks a slot deleted. The cell bytes are not reclaimed.
  bool Delete(uint16_t slot) {
    if (slot >= slot_count()) return false;
    char* s = SlotPtr(slot);
    if (DecodeFixed16(s) == 0) return false;
    EncodeFixed16(s, 0);
    EncodeFixed16(s + 2, 0);
    return true;
  }

  const char* data() const { return data_; }

 private:
  char* SlotPtr(uint16_t slot) const {
    return data_ + kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  }

  char* data_;
};

}  // namespace hazy::storage

#endif  // HAZY_STORAGE_PAGE_H_
