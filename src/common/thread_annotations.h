// Clang Thread Safety Analysis annotation macros.
//
// Every mutex-bearing component in the engine annotates its locking contract
// with these macros so that incorrect lock usage is a COMPILE ERROR under
// clang (-Wthread-safety, promoted to -Werror=thread-safety by the
// HAZY_THREAD_SAFETY CMake option and the static-analysis CI job). Under
// gcc — which has no capability analysis — every macro expands to nothing,
// so the annotations are free documentation there.
//
// Conventions used across the repo:
//
//   GUARDED_BY(mu_)      on every field a mutex protects. Reads and writes
//                        outside a hold are compile errors.
//   REQUIRES(mu_)        on private *Locked() helpers whose caller must hold
//                        the mutex.
//   EXCLUDES(mu_)        on entry points that acquire the mutex themselves
//                        (calling them while holding it would deadlock), and
//                        on lock-free fast paths that must never touch it.
//   ACQUIRE/RELEASE      on the annotated wrapper types in common/mutex.h;
//                        application code should use hazy::Mutex /
//                        hazy::MutexLock / hazy::CondVar rather than raw
//                        std::mutex so the analysis sees every acquisition.
//   NO_THREAD_SAFETY_ANALYSIS
//                        the escape hatch. Each use MUST carry a one-line
//                        comment stating the invariant that makes the
//                        unchecked code safe; tools/lint_invariants.py
//                        enforces the comment and CI counts the total
//                        (budget: < 10 repo-wide).
//
// The macro set mirrors the clang documentation / abseil naming so the
// analysis semantics are exactly the upstream-documented ones.

#ifndef HAZY_COMMON_THREAD_ANNOTATIONS_H_
#define HAZY_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HAZY_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef HAZY_THREAD_ANNOTATION__
#define HAZY_THREAD_ANNOTATION__(x)  // no-op: compiler lacks the analysis
#endif

// Type annotations -----------------------------------------------------------

/// Marks a type as a lockable capability (e.g. CAPABILITY("mutex")).
#define CAPABILITY(x) HAZY_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY HAZY_THREAD_ANNOTATION__(scoped_lockable)

// Data annotations -----------------------------------------------------------

/// Field is protected by the given capability; access requires holding it.
#define GUARDED_BY(x) HAZY_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) HAZY_THREAD_ANNOTATION__(pt_guarded_by(x))

// Lock-ordering annotations --------------------------------------------------

#define ACQUIRED_BEFORE(...) HAZY_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) HAZY_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// Function annotations -------------------------------------------------------

/// Caller must hold the capability exclusively for the call's duration.
#define REQUIRES(...) \
  HAZY_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define REQUIRES_SHARED(...) \
  HAZY_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define ACQUIRE(...) HAZY_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HAZY_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it on entry).
#define RELEASE(...) HAZY_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HAZY_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  HAZY_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  HAZY_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HAZY_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself, or
/// is a lock-free path that must stay off the mutex).
#define EXCLUDES(...) HAZY_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define ASSERT_CAPABILITY(x) \
  HAZY_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  HAZY_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) HAZY_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function body is not analyzed. Every use must carry a
/// one-line invariant comment (enforced by tools/lint_invariants.py).
#define NO_THREAD_SAFETY_ANALYSIS \
  HAZY_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // HAZY_COMMON_THREAD_ANNOTATIONS_H_
