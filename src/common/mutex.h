// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// std::mutex carries no capability attributes, so Clang Thread Safety
// Analysis cannot check code that uses it directly. These wrappers are
// byte-for-byte as cheap as the std primitives they wrap (an inline call to
// lock/unlock; CondVar rides the native std::condition_variable via the
// adopt_lock trick, not the slower condition_variable_any) but expose the
// locking contract to the analysis:
//
//   hazy::Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//
//   void Set(int v) EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     value_ = v;                  // OK: lock held
//   }
//   // value_ = 7;                 // compile error under clang
//
// Condition waits are written as explicit loops with direct field access —
//
//   MutexLock lock(mu_);
//   while (!done_) cv_.Wait(mu_);
//
// — NOT with predicate lambdas: the analysis treats a lambda body as an
// unannotated function, so guarded-field access inside `cv.wait(lock, pred)`
// would need an escape hatch. The loop form is checked end-to-end.

#ifndef HAZY_COMMON_MUTEX_H_
#define HAZY_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace hazy {

/// \brief Annotated exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op that tells the analysis the lock is held — for code reached only
  /// from a context that acquired the mutex through a path the analysis
  /// cannot follow. Prefer REQUIRES on the function instead.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over hazy::Mutex (annotated std::lock_guard/unique_lock
/// replacement).
///
/// Supports early Unlock() and re-Lock() for drop-the-mutex-around-I/O
/// sections; the destructor releases only if currently held. The analysis
/// tracks the underlying mutex capability through all three operations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before scope exit (e.g. to run I/O unlocked).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

  bool held() const { return held_; }

 private:
  Mutex& mu_;
  bool held_;
};

/// \brief Condition variable bound to hazy::Mutex.
///
/// Wraps std::condition_variable (not condition_variable_any): Wait adopts
/// the Mutex's native handle for the duration of the block, so the fast
/// futex path is identical to std::unique_lock code. As with std::mutex,
/// the calling thread must hold the mutex; the analysis enforces that via
/// REQUIRES.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // hold stays with the caller's scope
  }

  /// Timed wait; returns false on timeout. Callers re-check their predicate
  /// in a loop either way (spurious wakeups).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, timeout);
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hazy

#endif  // HAZY_COMMON_MUTEX_H_
