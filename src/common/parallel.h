// Data-parallel helpers over the shared process-wide ThreadPool. The eager
// relabel scans and lazy All Members scans are embarrassingly parallel over
// rows (the paper's Fig 11(B) scale-up observation: "the locking protocols
// are trivial" for read-side work), so views shard them across one pool
// instead of each owning threads.
//
// The loops are templates: the per-chunk body is invoked directly (no
// std::function type erasure in the row loop), and only the per-chunk pool
// submission pays one std::function construction.

#ifndef HAZY_COMMON_PARALLEL_H_
#define HAZY_COMMON_PARALLEL_H_

#include <cstddef>
#include <utility>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace hazy {

/// Default `min_parallel` for ParallelFor over per-row classification work:
/// below this many rows a sharded scan costs more than it saves.
inline constexpr size_t kDefaultMinParallelRows = 4096;

/// The lazily-created process-wide pool. Sized by $HAZY_THREADS when set,
/// otherwise std::thread::hardware_concurrency(). Never null.
ThreadPool* SharedThreadPool();

/// Number of workers SharedThreadPool() runs (>= 1).
size_t SharedThreadCount();

/// Number of chunks ParallelChunks/ParallelFor would split `n` items into:
/// 1 when the work runs inline, else up to the worker count. Use it to size
/// per-chunk result buffers before the parallel loop.
inline size_t ParallelChunkCount(size_t n, size_t min_parallel) {
  if (n == 0) return 1;
  size_t workers = SharedThreadCount();
  if (workers <= 1 || n < min_parallel) return 1;
  return workers < n ? workers : n;
}

/// Runs fn(chunk_index, begin, end) over a partition of [0, n) into
/// exactly `chunks` contiguous chunks (clamped to [1, n]), chunk_index in
/// chunk order of the range. chunks == 1 runs inline (single call, chunk
/// 0, no pool). fn must be safe to invoke concurrently on distinct chunks;
/// blocks until every chunk completes. Must not be called from a pool
/// worker (chunks would queue behind the blocked caller).
template <typename Fn>
void RunChunks(size_t n, size_t chunks, Fn&& fn) {
  if (n == 0) return;
  if (chunks > n) chunks = n;
  if (chunks <= 1) {
    fn(size_t{0}, size_t{0}, n);
    return;
  }
  size_t chunk = (n + chunks - 1) / chunks;

  // Per-call completion latch: overlapping parallel loops sharing the pool
  // must not wait on each other's tasks. (Locals cannot be GUARDED_BY, but
  // the annotated Mutex still checks acquisition balance.)
  Mutex mu;
  CondVar done_cv;
  size_t outstanding = 0;
  ThreadPool* pool = SharedThreadPool();
  // Propagate the caller's statement trace into the workers so events they
  // record (pool misses, evictions) are attributed to the statement. Workers
  // only AddEvent — span open/close stays on the calling thread.
  obs::TraceContext* parent_trace = obs::CurrentTrace();
  size_t index = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++index) {
    size_t end = begin + chunk < n ? begin + chunk : n;
    {
      MutexLock lock(mu);
      ++outstanding;
    }
    pool->Submit([&, index, begin, end, parent_trace] {
      obs::ScopedTraceInstall install(parent_trace);
      fn(index, begin, end);
      MutexLock lock(mu);
      if (--outstanding == 0) done_cv.NotifyAll();
    });
  }
  MutexLock lock(mu);
  while (outstanding != 0) done_cv.Wait(mu);
}

/// RunChunks with the default sizing: ParallelChunkCount(n, min_parallel)
/// chunks (inline below min_parallel or with a single worker).
template <typename Fn>
void ParallelChunks(size_t n, size_t min_parallel, Fn&& fn) {
  RunChunks(n, ParallelChunkCount(n, min_parallel), std::forward<Fn>(fn));
}

/// Runs fn(begin, end) over a partition of [0, n); see ParallelChunks.
template <typename Fn>
void ParallelFor(size_t n, size_t min_parallel, Fn&& fn) {
  ParallelChunks(n, min_parallel,
                 [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

}  // namespace hazy

#endif  // HAZY_COMMON_PARALLEL_H_
