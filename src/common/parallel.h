// Data-parallel helpers over the shared process-wide ThreadPool. The eager
// relabel scans and lazy All Members scans are embarrassingly parallel over
// rows (the paper's Fig 11(B) scale-up observation: "the locking protocols
// are trivial" for read-side work), so views shard them across one pool
// instead of each owning threads.

#ifndef HAZY_COMMON_PARALLEL_H_
#define HAZY_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace hazy {

/// Default `min_parallel` for ParallelFor over per-row classification work:
/// below this many rows a sharded scan costs more than it saves.
inline constexpr size_t kDefaultMinParallelRows = 4096;

/// The lazily-created process-wide pool. Sized by $HAZY_THREADS when set,
/// otherwise std::thread::hardware_concurrency(). Never null.
ThreadPool* SharedThreadPool();

/// Number of workers SharedThreadPool() runs (>= 1).
size_t SharedThreadCount();

/// Runs fn(begin, end) over a partition of [0, n) into per-worker chunks.
/// Runs inline (single call, no pool) when n < min_parallel or only one
/// worker is available, so small inputs pay no synchronization cost.
/// fn must be safe to invoke concurrently on disjoint ranges; blocks until
/// every chunk completes. Must not be called from a pool worker (chunks
/// would queue behind the blocked caller).
void ParallelFor(size_t n, size_t min_parallel,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace hazy

#endif  // HAZY_COMMON_PARALLEL_H_
