// Minimal leveled logging + check macros (Arrow/Google style).

#ifndef HAZY_COMMON_LOGGING_H_
#define HAZY_COMMON_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hazy {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hazy

#define HAZY_LOG(level) \
  ::hazy::internal::LogMessage(::hazy::LogLevel::k##level, __FILE__, __LINE__)

// Invariant checks: abort with a message when violated. Used for programmer
// errors (not data errors, which surface as Status).
#define HAZY_CHECK(cond)                                              \
  if (!(cond))                                                        \
  ::hazy::internal::LogMessage(::hazy::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define HAZY_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::hazy::Status _st = (expr);                                       \
    HAZY_CHECK(_st.ok()) << _st.ToString();                            \
  } while (0)

#define HAZY_DCHECK(cond) assert(cond)

#endif  // HAZY_COMMON_LOGGING_H_
