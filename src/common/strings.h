// Small string helpers shared by the SQL front end, feature functions, and
// benchmark table printers.

#ifndef HAZY_COMMON_STRINGS_H_
#define HAZY_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace hazy {

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "1.3GB", "5.4MB".
std::string HumanBytes(uint64_t bytes);

/// Human-readable count, e.g. "721k", "1.3M".
std::string HumanCount(uint64_t n);

}  // namespace hazy

#endif  // HAZY_COMMON_STRINGS_H_
