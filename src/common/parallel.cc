#include "common/parallel.h"

#include <cstdlib>
#include <thread>

namespace hazy {

namespace {

size_t PoolSizeFromEnv() {
  if (const char* env = std::getenv("HAZY_THREADS")) {
    long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool* SharedThreadPool() {
  static ThreadPool* pool = new ThreadPool(PoolSizeFromEnv());
  return pool;
}

size_t SharedThreadCount() { return SharedThreadPool()->num_threads(); }

}  // namespace hazy
