#include "common/parallel.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace hazy {

namespace {

size_t PoolSizeFromEnv() {
  if (const char* env = std::getenv("HAZY_THREADS")) {
    long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool* SharedThreadPool() {
  static ThreadPool* pool = new ThreadPool(PoolSizeFromEnv());
  return pool;
}

size_t SharedThreadCount() { return SharedThreadPool()->num_threads(); }

void ParallelFor(size_t n, size_t min_parallel,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = SharedThreadCount();
  if (workers <= 1 || n < min_parallel) {
    fn(0, n);
    return;
  }
  size_t chunks = workers;
  if (chunks > n) chunks = n;
  size_t chunk = (n + chunks - 1) / chunks;

  // Per-call completion latch: overlapping ParallelFor calls sharing the
  // pool must not wait on each other's tasks.
  std::mutex mu;
  std::condition_variable done_cv;
  size_t outstanding = 0;
  ThreadPool* pool = SharedThreadPool();
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = begin + chunk < n ? begin + chunk : n;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outstanding;
    }
    pool->Submit([&, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(mu);
      if (--outstanding == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return outstanding == 0; });
}

}  // namespace hazy
