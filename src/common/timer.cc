#include "common/timer.h"

namespace hazy {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace hazy
