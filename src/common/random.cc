#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hazy {

namespace {
// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  HAZY_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HAZY_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  HAZY_CHECK(n > 0) << "Zipf over empty support";
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace hazy
