// Fixed-size worker pool used by the scale-up experiment (Figure 11(B)) and
// by concurrent-read stress tests.

#ifndef HAZY_COMMON_THREAD_POOL_H_
#define HAZY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hazy {

/// \brief A simple fixed-size thread pool with a FIFO task queue.
///
/// Tasks are std::function<void()>. Wait() blocks until the queue drains and
/// all in-flight tasks finish; the destructor joins all workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace hazy

#endif  // HAZY_COMMON_THREAD_POOL_H_
