// Fixed-size worker pool used by the scale-up experiment (Figure 11(B)) and
// by concurrent-read stress tests.

#ifndef HAZY_COMMON_THREAD_POOL_H_
#define HAZY_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hazy {

/// \brief A simple fixed-size thread pool with a FIFO task queue.
///
/// Tasks are std::function<void()>. Wait() blocks until the queue drains and
/// all in-flight tasks finish; the destructor joins all workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until all submitted tasks have completed.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written only by the constructor
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace hazy

#endif  // HAZY_COMMON_THREAD_POOL_H_
