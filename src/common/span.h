// A minimal read-only std::span stand-in (the tree builds as C++17, where
// <span> is unavailable). Just enough surface for batch APIs: contiguous
// (pointer, length) views over vectors and arrays.

#ifndef HAZY_COMMON_SPAN_H_
#define HAZY_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace hazy {

/// \brief Non-owning view over a contiguous sequence of T.
template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;

  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit conversion from a vector (of T, or of mutable T for
  /// Span<const T>), so call sites pass vectors directly.
  Span(const std::vector<value_type>& v) : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  /// The sub-span [offset, offset + count); count clamped to the tail.
  constexpr Span subspan(size_t offset, size_t count = ~size_t{0}) const {
    if (offset > size_) offset = size_;
    size_t n = size_ - offset;
    if (count < n) n = count;
    return Span(data_ + offset, n);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace hazy

#endif  // HAZY_COMMON_SPAN_H_
