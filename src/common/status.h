// Status / StatusOr error-handling primitives in the RocksDB/Arrow idiom.
//
// The library does not throw exceptions: every fallible operation returns a
// Status (or a StatusOr<T> when it also produces a value). Callers either
// handle the error or propagate it with HAZY_RETURN_NOT_OK / HAZY_ASSIGN_OR_RETURN.

#ifndef HAZY_COMMON_STATUS_H_
#define HAZY_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace hazy {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kNotSupported = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kAborted = 10,
};

/// Returns a human-readable name for a status code, e.g. "NotFound".
const char* StatusCodeToString(StatusCode code);

// --------------------------------------------------------------------------
// Wire codes (rpc/protocol.h error frames).
//
// Every StatusCode has a stable numeric wire code so a client can act on the
// *code* of a remote failure, not just its message. The table below is
// FROZEN: codes are part of the network protocol and must never be renumbered
// or reused — new StatusCodes get the next free number appended at the end.
// --------------------------------------------------------------------------

/// Largest assigned wire code (tests iterate [0, kMaxStatusWireCode]).
constexpr uint8_t kMaxStatusWireCode = 10;

/// Maps a status code to its frozen wire number.
uint8_t StatusCodeToWire(StatusCode code);

/// Maps a wire number back to the status code. Returns false (and leaves
/// `*code` untouched) for unassigned numbers — a forward-compatibility guard
/// against frames from a newer peer.
bool StatusCodeFromWire(uint8_t wire, StatusCode* code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
///
/// [[nodiscard]]: silently dropping a Status is a compile error (gcc:
/// -Werror=unused-result, on by default in this build; clang likewise).
/// A call site that genuinely cannot act on the error must cast to void
/// WITH a justification comment — tools/lint_invariants.py rejects bare
/// `(void)` casts of fallible calls without one.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// Modeled on arrow::Result / absl::StatusOr. Access the value with
/// ValueOrDie() only after checking ok(); prefer HAZY_ASSIGN_OR_RETURN.
/// [[nodiscard]] for the same reason as Status: a dropped StatusOr is a
/// dropped error AND a dropped value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok());
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `alt` if this holds an error.
  T ValueOr(T alt) const {
    if (ok()) return std::get<T>(rep_);
    return alt;
  }

 private:
  std::variant<Status, T> rep_;
};

// Propagates a non-OK Status to the caller.
#define HAZY_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::hazy::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define HAZY_CONCAT_IMPL(a, b) a##b
#define HAZY_CONCAT(a, b) HAZY_CONCAT_IMPL(a, b)

// Evaluates a StatusOr expression; on error returns the Status, otherwise
// binds the value to `lhs`.
#define HAZY_ASSIGN_OR_RETURN(lhs, expr)                          \
  HAZY_ASSIGN_OR_RETURN_IMPL(HAZY_CONCAT(_sor_, __LINE__), lhs, expr)

#define HAZY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

}  // namespace hazy

#endif  // HAZY_COMMON_STATUS_H_
