#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hazy {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%llu%s", static_cast<unsigned long long>(bytes), units[u]);
  return StrFormat("%.1f%s", v, units[u]);
}

std::string HumanCount(uint64_t n) {
  if (n >= 1000000) return StrFormat("%.1fM", static_cast<double>(n) / 1e6);
  if (n >= 1000) return StrFormat("%lluk", static_cast<unsigned long long>(n / 1000));
  return StrFormat("%llu", static_cast<unsigned long long>(n));
}

}  // namespace hazy
