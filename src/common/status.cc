#include "common/status.h"

namespace hazy {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

uint8_t StatusCodeToWire(StatusCode code) {
  // Frozen wire numbering — see status.h. Spelled out case by case (instead
  // of casting the enum value) so that reordering the enum cannot silently
  // change what goes on the wire.
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kAlreadyExists:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kIOError:
      return 5;
    case StatusCode::kCorruption:
      return 6;
    case StatusCode::kNotSupported:
      return 7;
    case StatusCode::kResourceExhausted:
      return 8;
    case StatusCode::kInternal:
      return 9;
    case StatusCode::kAborted:
      return 10;
  }
  return 9;  // unreachable; map to Internal
}

bool StatusCodeFromWire(uint8_t wire, StatusCode* code) {
  switch (wire) {
    case 0:
      *code = StatusCode::kOk;
      return true;
    case 1:
      *code = StatusCode::kInvalidArgument;
      return true;
    case 2:
      *code = StatusCode::kNotFound;
      return true;
    case 3:
      *code = StatusCode::kAlreadyExists;
      return true;
    case 4:
      *code = StatusCode::kOutOfRange;
      return true;
    case 5:
      *code = StatusCode::kIOError;
      return true;
    case 6:
      *code = StatusCode::kCorruption;
      return true;
    case 7:
      *code = StatusCode::kNotSupported;
      return true;
    case 8:
      *code = StatusCode::kResourceExhausted;
      return true;
    case 9:
      *code = StatusCode::kInternal;
      return true;
    case 10:
      *code = StatusCode::kAborted;
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace hazy
