// Deterministic pseudo-random utilities used throughout the repo: a
// xoshiro256++ generator plus samplers (uniform, Gaussian, Zipf) needed by
// the synthetic data generators and property tests.

#ifndef HAZY_COMMON_RANDOM_H_
#define HAZY_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hazy {

/// \brief xoshiro256++ PRNG. Fast, high-quality, fully deterministic given a
/// seed — every experiment in this repo is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Satisfies UniformRandomBitGenerator so Rng works with <algorithm>.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Zipf-distributed sampler over ranks {0, ..., n-1} with exponent s.
///
/// Rank 0 is the most frequent item. Used to give synthetic text corpora a
/// realistic long-tailed vocabulary (the shape that makes DBLife/Citeseer
/// feature vectors sparse).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace hazy

#endif  // HAZY_COMMON_RANDOM_H_
