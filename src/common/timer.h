// Wall-clock timing helpers. Skiing's cost accounting (Section 3.2.1 of the
// paper) is driven by measured seconds, so the engines time their own steps.

#ifndef HAZY_COMMON_TIMER_H_
#define HAZY_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hazy {

/// Monotonic nanosecond timestamp.
int64_t NowNanos();

/// \brief Stopwatch measuring elapsed wall time since construction or Reset().
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = NowNanos(); }

  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) * 1e-6; }

 private:
  int64_t start_;
};

}  // namespace hazy

#endif  // HAZY_COMMON_TIMER_H_
