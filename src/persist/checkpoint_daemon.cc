#include "persist/checkpoint_daemon.h"

#include <chrono>

#include "common/logging.h"
#include "common/timer.h"
#include "engine/database.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace hazy::persist {

CheckpointDaemon::CheckpointDaemon(engine::Database* db,
                                   CheckpointDaemonOptions options)
    : db_(db), options_(options) {}

CheckpointDaemon::~CheckpointDaemon() { Stop(); }

void CheckpointDaemon::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { ThreadMain(); });
}

void CheckpointDaemon::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  {
    // Taking the mutex before notifying closes the race with a thread that
    // checked stop_ and is about to wait (same discipline as the
    // background writer's Stop).
    MutexLock lock(mu_);
  }
  cv_.NotifyAll();
  thread_.join();
}

void CheckpointDaemon::set_wal_checkpoint_bytes(uint64_t bytes) {
  {
    MutexLock lock(mu_);
    options_.wal_checkpoint_bytes = bytes;
  }
  cv_.NotifyAll();
}

void CheckpointDaemon::set_interval_seconds(double seconds) {
  {
    MutexLock lock(mu_);
    options_.interval_seconds = seconds;
  }
  cv_.NotifyAll();
}

CheckpointDaemonOptions CheckpointDaemon::options() const {
  MutexLock lock(mu_);
  return options_;
}

void CheckpointDaemon::Poke() { cv_.NotifyAll(); }

Status CheckpointDaemon::last_error() const {
  MutexLock lock(mu_);
  return last_error_;
}

bool CheckpointDaemon::ShouldCheckpointLocked(double since_last_seconds) const {
  const storage::Wal* wal = db_->wal();
  if (wal == nullptr) return false;
  if (options_.wal_checkpoint_bytes > 0 &&
      wal->tail_bytes() >= options_.wal_checkpoint_bytes) {
    return true;
  }
  return options_.interval_seconds > 0 &&
         since_last_seconds >= options_.interval_seconds;
}

void CheckpointDaemon::ThreadMain() {
  Timer since_last;
  uint64_t last_epoch = db_->checkpoint_epoch();
  MutexLock lock(mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto poll =
        std::chrono::duration<double>(options_.poll_seconds <= 0 ? 0.05
                                                                 : options_.poll_seconds);
    cv_.WaitFor(mu_, poll);
    if (stop_.load(std::memory_order_relaxed)) break;
    // A checkpoint taken by anyone — manual CHECKPOINT, the batch-boundary
    // hand-off — restarts the interval clock; the daemon must not follow
    // it with an immediate redundant one.
    const uint64_t epoch = db_->checkpoint_epoch();
    if (epoch != last_epoch) {
      last_epoch = epoch;
      since_last.Reset();
    }
    if (!ShouldCheckpointLocked(since_last.ElapsedSeconds())) continue;
    lock.Unlock();

    // Checkpoints are refused inside an update batch; post the batch-
    // boundary hand-off FIRST (so a long batch checkpoints the moment it
    // ends, not a poll later), then still run the pre-flush below — it is
    // useful concurrent work either way.
    const bool mid_batch = db_->in_update_batch();
    if (mid_batch) db_->RequestCheckpointAtBatchEnd();

    // Copy phase: flush the dirty pool (pending write-back queue included)
    // concurrently with foreground statements. Safe without the gate —
    // pinned frames (bytes possibly mid-mutation) are skipped, page-level
    // write-back of the rest is idempotent and WAL-protected, and a frame
    // re-dirtied mid-flush keeps its dirty bit. This drains the bulk of
    // the checkpoint's I/O before anything pauses.
    Status s = db_->buffer_pool()->FlushUnpinned();

    // Commit section: the ordinary exact checkpoint, under the exclusive
    // statement gate (taken inside Database::Checkpoint). Foreground
    // statements pause only for this part.
    if (s.ok() && !mid_batch) s = db_->Checkpoint().status();

    lock.Lock();
    if (mid_batch) {
      // Handed off; the boundary runs it. Keep polling in case the batch
      // outlives several trips. A failing pre-flush must still be visible.
      if (!s.ok()) {
        last_error_ = s;
        HAZY_LOG(Warning) << "background pre-flush failed: " << s.ToString();
      }
    } else if (s.ok()) {
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
      last_error_ = Status::OK();
      since_last.Reset();
    } else if (s.IsInvalidArgument() && db_->in_update_batch()) {
      // Raced into a batch between the peek and the gate: hand off. Any
      // other InvalidArgument is a real failure and must stay visible.
      db_->RequestCheckpointAtBatchEnd();
    } else {
      last_error_ = s;
      HAZY_LOG(Warning) << "background checkpoint failed: " << s.ToString();
    }
  }
}

}  // namespace hazy::persist
