// Durable view catalog + checkpoint/recovery (the persist subsystem's top
// layer). This is the mechanism that makes the paper's pitch literal: the
// classification views' state — models, scan orders, water marks, replay
// logs — *lives in the RDBMS*, in relations, and survives the process.
//
// Layout inside the database file:
//
//   page 0                  header page: magic, format version, a pointer to
//                           the current master-catalog chain, and the
//                           checkpoint epoch. Rewritten last — flipping this
//                           pointer is the atomic commit of a checkpoint.
//   master-catalog chain    a linked list of raw pages holding one serialized
//                           record: every table's name, schema, primary key
//                           and heap-chain metadata as of the checkpoint.
//                           Each checkpoint writes a *new* chain and then
//                           swaps the header pointer (write-temp-then-swap);
//                           a crash mid-checkpoint leaves the old chain — and
//                           therefore the old, complete checkpoint — intact.
//   __hazy_views            system table: one row per classification view
//                           per epoch (row_key = epoch * 4096 + view_id) with
//                           its name and architecture — the durable analogue
//                           of Hazy's view catalog relation.
//   __hazy_view_state       system table: one (possibly overflow-spilled) row
//                           per view per epoch holding the full state blob:
//                           view definition, label vocabulary, feature-
//                           function statistics, example replay log, and the
//                           architecture's SaveState payload.
//
// State rows are keyed by epoch, so a checkpoint never overwrites the rows
// the previous checkpoint committed. Rows of superseded epochs are
// garbage-collected only *after* the header flip makes the new epoch
// durable (deleting a row frees its overflow pages for reuse, so rows the
// durable image references must stay untouched while a newer checkpoint
// could still fail); orphans of a crashed attempt at the upcoming epoch are
// purged just before rewriting it.

#ifndef HAZY_PERSIST_CHECKPOINT_H_
#define HAZY_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/status.h"

namespace hazy::engine {
class Database;
class ManagedView;
}  // namespace hazy::engine

namespace hazy::persist {

/// System-table names (reserved; surfaced by the shell's \d like any table).
inline constexpr char kViewsTableName[] = "__hazy_views";
inline constexpr char kViewStateTableName[] = "__hazy_view_state";

/// Maximum number of classification views per database (bounds the
/// epoch-keyed row-id scheme of the system tables).
inline constexpr int64_t kMaxViewsPerDatabase = 4096;

/// True for '__hazy*' names (case-insensitive, like the catalog): the
/// persist subsystem's reserved namespace. User DDL/DML and classification
/// views must not touch these tables.
bool IsReservedTableName(std::string_view name);

/// \brief Checkpoints and recovers a Database's full classification-view
/// stack through its own storage engine.
class ViewCheckpointer {
 public:
  explicit ViewCheckpointer(engine::Database* db) : db_(db) {}

  /// Formats the header page of a freshly created database file.
  Status InitFresh();

  /// Writes a checkpoint: flushes every view's pending trigger queue,
  /// snapshots all view state into the system tables, persists the table
  /// catalog, and atomically swaps the header to the new epoch. Returns the
  /// new epoch.
  StatusOr<uint64_t> Checkpoint();

  /// Rebuilds the catalog, tables, and managed views from the last durable
  /// checkpoint of an existing database file — serving identical answers
  /// with zero model retraining — and rewires the maintenance triggers.
  Status Recover();

 private:
  Status EnsureSystemTables();
  Status DeleteRowsWhere(const std::function<bool(uint64_t epoch)>& stale);
  Status CollectGarbageRows(uint64_t keep_epoch);
  Status WriteViewRows(uint64_t epoch);
  Status WriteMasterRecord(uint64_t epoch, uint32_t* new_head);
  Status ReadMasterRecord(uint32_t head, std::string* out);
  Status FreeChain(uint32_t head);
  Status RecoverViews(uint64_t epoch);

  engine::Database* db_;
};

}  // namespace hazy::persist

#endif  // HAZY_PERSIST_CHECKPOINT_H_
