// Durable view catalog + checkpoint/recovery (the persist subsystem's top
// layer). This is the mechanism that makes the paper's pitch literal: the
// classification views' state — models, scan orders, water marks, replay
// logs — *lives in the RDBMS*, in relations, and survives the process.
//
// Layout inside the database file:
//
//   page 0                  header page: magic, format version, a pointer to
//                           the current master-catalog chain, and the
//                           checkpoint epoch. Rewritten last — flipping this
//                           pointer is the atomic commit of a checkpoint.
//   master-catalog chain    a linked list of raw pages holding one serialized
//                           record: every table's name, schema, primary key
//                           and heap-chain metadata as of the checkpoint.
//                           Each checkpoint writes a *new* chain and then
//                           swaps the header pointer (write-temp-then-swap);
//                           a crash mid-checkpoint leaves the old chain — and
//                           therefore the old, complete checkpoint — intact.
//   __hazy_views            system table: one row per classification view
//                           per epoch (row_key = epoch * 4096 + view_id) with
//                           its name and architecture — the durable analogue
//                           of Hazy's view catalog relation.
//   __hazy_view_state       system table: one (possibly overflow-spilled) row
//                           per view per epoch holding the full state blob:
//                           view definition, label vocabulary, feature-
//                           function statistics, example replay log, and the
//                           architecture's SaveState payload.
//
// State rows are keyed by epoch, so a checkpoint never overwrites the rows
// the previous checkpoint committed. Rows of superseded epochs are
// garbage-collected only *after* the header flip makes the new epoch
// durable (deleting a row frees its overflow pages for reuse, so rows the
// durable image references must stay untouched while a newer checkpoint
// could still fail); orphans of a crashed attempt at the upcoming epoch are
// purged just before rewriting it.

#ifndef HAZY_PERSIST_CHECKPOINT_H_
#define HAZY_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hazy::engine {
class Database;
class ManagedView;
struct ClassificationViewDef;
}  // namespace hazy::engine

namespace hazy::persist {

class StateReader;
class StateWriter;

/// System-table names (reserved; surfaced by the shell's \d like any table).
inline constexpr char kViewsTableName[] = "__hazy_views";
inline constexpr char kViewStateTableName[] = "__hazy_view_state";

/// Maximum number of classification views per database (bounds the
/// epoch-keyed row-id scheme of the system tables).
inline constexpr int64_t kMaxViewsPerDatabase = 4096;

/// True for '__hazy*' names (case-insensitive, like the catalog): the
/// persist subsystem's reserved namespace. User DDL/DML and classification
/// views must not touch these tables.
bool IsReservedTableName(std::string_view name);

/// True when the buffer holds a hazy database header page (magic match).
/// Lets Database::Open distinguish a crash's torn tail-page write (valid
/// header, misaligned size — truncate and recover) from a foreign file that
/// must never be touched.
bool IsHazyHeaderPage(const char* page0);

/// Serializers for a classification-view definition (shared between the
/// checkpoint state blobs and the WAL's CREATE VIEW logical records).
void PutViewDef(StateWriter* w, const engine::ClassificationViewDef& def);
Status GetViewDef(StateReader* r, engine::ClassificationViewDef* def);

/// \brief Checkpoints and recovers a Database's full classification-view
/// stack through its own storage engine.
class ViewCheckpointer {
 public:
  explicit ViewCheckpointer(engine::Database* db) : db_(db) {}

  /// Formats the header page of a freshly created database file.
  Status InitFresh();

  /// Writes a checkpoint: flushes every view's pending trigger queue,
  /// snapshots all view state into the system tables, persists the table
  /// catalog, and atomically swaps the header to the new epoch. Returns the
  /// new epoch.
  StatusOr<uint64_t> Checkpoint();

  /// Recovers an existing database file to an exact point. In order: the
  /// write-ahead log rolls the file back to the checkpoint its before-images
  /// protect (or is discarded when a completed checkpoint already absorbed
  /// it); the catalog, tables, and managed views are rebuilt from the
  /// durable checkpoint with zero model retraining and the maintenance
  /// triggers rewired; unreachable pages — pre-restart view-state chains,
  /// rolled-back post-checkpoint allocations — are swept into the pager free
  /// list; and the log's committed logical records are replayed through the
  /// trigger machinery so base tables AND views land on checkpoint +
  /// committed suffix, never a mixed state.
  Status Recover();

  /// Serializes one view's full durable state (definition, vocabulary,
  /// replay log, feature statistics, architecture payload) — the row format
  /// of __hazy_view_state, also used by Database::Compact.
  Status SerializeViewState(const engine::ManagedView& mv, std::string* blob);

  /// Inverse of SerializeViewState: rebuilds a managed view, registers it
  /// with the database, and arms its triggers.
  Status RestoreViewFromBlob(std::string_view blob);

 private:
  Status EnsureSystemTables();
  Status DeleteRowsWhere(const std::function<bool(uint64_t epoch)>& stale);
  Status CollectGarbageRows(uint64_t keep_epoch);
  Status WriteViewRows(uint64_t epoch);
  Status WriteMasterRecord(uint64_t epoch, uint32_t* new_head);
  Status ReadMasterRecord(uint32_t head, std::string* out,
                          std::vector<uint32_t>* chain_pages = nullptr);
  Status FreeChain(uint32_t head);
  Status RecoverViews(uint64_t epoch);

  /// Rolls the database file back to the log's base checkpoint (applies
  /// every before-image) when the log is current, or discards a stale log.
  /// Sets *replay_pending when committed logical records await replay.
  Status DisposeWal(bool* replay_pending);

  /// Mark-and-sweep over the recovered image: every page not reachable from
  /// the header, master chain, or a table heap joins the pager free list.
  /// `persisted_free` (the list saved in the master record) cross-checks
  /// reachability: a page both declared free and reachable is corruption.
  Status SweepFreePages(const std::vector<uint32_t>& chain_pages,
                        const std::vector<uint32_t>& persisted_free);

  engine::Database* db_;
};

}  // namespace hazy::persist

#endif  // HAZY_PERSIST_CHECKPOINT_H_
