// Background checkpointer: bounds WAL replay length under sustained ingest.
//
// Without it, the write-ahead log grows until someone calls CHECKPOINT — a
// crash after an hour of bulk load replays an hour of log. The daemon
// watches the log's tail (Wal::tail_bytes) and the wall clock, and when a
// threshold trips it takes a checkpoint in two phases:
//
//   copy phase     concurrent with foreground ingest: the pool's dirty pages
//                  and the pending write-back queue are flushed WITHOUT the
//                  statement gate (page-level write-back is always safe —
//                  frames re-dirtied mid-flush keep their dirty bit via the
//                  per-frame generation counter, and a torn on-disk mix is
//                  WAL-protected). This drains the bulk of the checkpoint's
//                  I/O while statements keep running.
//
//   commit section the normal Database::Checkpoint under the exclusive
//                  statement gate: view-state serialization, system-table
//                  rows, the (now small) residual flush, header flip, WAL
//                  rebase. Foreground statements pause only for this part.
//
// Exactness is inherited, not re-proven: the commit section IS the existing
// crash-safe checkpoint, taken at a statement boundary — so the crash-
// injection suite's bit-identical recovery guarantee holds with the daemon
// racing kills. A checkpoint that fails (mid-batch, injected fault, crash)
// is retried at the next trip; one that lands inside an update batch is
// refused by Database::Checkpoint and retried later.
//
// Knobs (DatabaseOptions::checkpointer, PRAGMA wal_checkpoint_bytes /
// wal_checkpoint_seconds): a byte threshold on the log tail, an optional
// time interval, and the poll cadence.

#ifndef HAZY_PERSIST_CHECKPOINT_DAEMON_H_
#define HAZY_PERSIST_CHECKPOINT_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hazy::engine {
class Database;
}  // namespace hazy::engine

namespace hazy::persist {

struct CheckpointDaemonOptions {
  /// Start the daemon with Database::Open. Off by default: short-lived
  /// sessions and tests keep their deterministic single-threaded shape
  /// unless they opt in (PRAGMA checkpoint_daemon = on).
  bool enabled = false;
  /// Checkpoint when the WAL tail exceeds this many bytes (0 = no size
  /// trigger). PRAGMA wal_checkpoint_bytes.
  uint64_t wal_checkpoint_bytes = 32ull << 20;
  /// Checkpoint at least this often in seconds (0 = no time trigger).
  /// PRAGMA wal_checkpoint_seconds.
  double interval_seconds = 0.0;
  /// Trigger-poll cadence.
  double poll_seconds = 0.05;
};

/// \brief The checkpoint thread. Owned by the Database; Start after
/// recovery, Stop before teardown/compaction.
class CheckpointDaemon {
 public:
  CheckpointDaemon(engine::Database* db, CheckpointDaemonOptions options);
  ~CheckpointDaemon();

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  void Start();
  void Stop() EXCLUDES(mu_);
  bool running() const { return thread_.joinable(); }

  /// Runtime knobs (PRAGMA).
  void set_wal_checkpoint_bytes(uint64_t bytes) EXCLUDES(mu_);
  void set_interval_seconds(double seconds) EXCLUDES(mu_);
  CheckpointDaemonOptions options() const EXCLUDES(mu_);

  /// Wakes the daemon to evaluate its triggers now.
  void Poke();

  uint64_t checkpoints_taken() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  /// Last checkpoint failure (sticky until the next success); OK if none.
  Status last_error() const EXCLUDES(mu_);

 private:
  void ThreadMain() EXCLUDES(mu_);
  bool ShouldCheckpointLocked(double since_last_seconds) const REQUIRES(mu_);

  engine::Database* db_;
  mutable Mutex mu_;
  CondVar cv_;
  CheckpointDaemonOptions options_ GUARDED_BY(mu_);
  Status last_error_ GUARDED_BY(mu_);
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> checkpoints_{0};
};

}  // namespace hazy::persist

#endif  // HAZY_PERSIST_CHECKPOINT_DAEMON_H_
