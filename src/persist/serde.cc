#include "persist/serde.h"

#include "common/strings.h"

namespace hazy::persist {

void StateWriter::PutDoubleVec(const std::vector<double>& v) {
  PutU64(v.size());
  for (double d : v) PutDouble(d);
}

void StateWriter::PutU64Vec(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (uint64_t u : v) PutU64(u);
}

void StateWriter::PutFeatureVector(const ml::FeatureVector& f) { f.EncodeTo(out_); }

void StateWriter::PutModel(const ml::LinearModel& m) {
  PutDoubleVec(m.w);
  PutDouble(m.b);
}

void StateWriter::PutKernelModel(const ml::KernelModel& m) {
  PutU8(static_cast<uint8_t>(m.kind));
  PutDouble(m.gamma);
  PutU64(m.support.size());
  for (const auto& s : m.support) PutFeatureVector(s);
  PutDoubleVec(m.coeffs);
}

Status StateReader::Truncated(const char* what) {
  return Status::Corruption(StrFormat("state blob truncated reading %s", what));
}

Status StateReader::GetU8(uint8_t* v) {
  if (data_.empty()) return Truncated("u8");
  *v = static_cast<uint8_t>(data_[0]);
  data_.remove_prefix(1);
  return Status::OK();
}

Status StateReader::GetBool(bool* v) {
  uint8_t b = 0;
  HAZY_RETURN_NOT_OK(GetU8(&b));
  *v = b != 0;
  return Status::OK();
}

Status StateReader::GetU32(uint32_t* v) {
  if (!storage::GetFixed32(&data_, v)) return Truncated("u32");
  return Status::OK();
}

Status StateReader::GetU64(uint64_t* v) {
  if (!storage::GetFixed64(&data_, v)) return Truncated("u64");
  return Status::OK();
}

Status StateReader::GetI32(int32_t* v) {
  uint32_t u = 0;
  HAZY_RETURN_NOT_OK(GetU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status StateReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  HAZY_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status StateReader::GetDouble(double* v) {
  if (!storage::GetDouble(&data_, v)) return Truncated("double");
  return Status::OK();
}

Status StateReader::GetString(std::string* v) {
  std::string_view s;
  if (!storage::GetLengthPrefixed(&data_, &s)) return Truncated("string");
  v->assign(s.data(), s.size());
  return Status::OK();
}

Status StateReader::CheckCount(uint64_t n, size_t min_bytes) const {
  if (min_bytes == 0) min_bytes = 1;
  if (n > data_.size() / min_bytes) {
    return Status::Corruption(
        StrFormat("state blob count %llu exceeds remaining %zu bytes",
                  static_cast<unsigned long long>(n), data_.size()));
  }
  return Status::OK();
}

Status StateReader::ExpectTag(uint32_t tag) {
  uint32_t got = 0;
  HAZY_RETURN_NOT_OK(GetU32(&got));
  if (got != tag) {
    return Status::Corruption(
        StrFormat("state blob section tag mismatch: expected %08x, found %08x", tag, got));
  }
  return Status::OK();
}

Status StateReader::GetDoubleVec(std::vector<double>* v) {
  uint64_t n = 0;
  HAZY_RETURN_NOT_OK(GetU64(&n));
  HAZY_RETURN_NOT_OK(CheckCount(n, sizeof(double)));
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double d = 0.0;
    HAZY_RETURN_NOT_OK(GetDouble(&d));
    v->push_back(d);
  }
  return Status::OK();
}

Status StateReader::GetU64Vec(std::vector<uint64_t>* v) {
  uint64_t n = 0;
  HAZY_RETURN_NOT_OK(GetU64(&n));
  HAZY_RETURN_NOT_OK(CheckCount(n, sizeof(uint64_t)));
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t u = 0;
    HAZY_RETURN_NOT_OK(GetU64(&u));
    v->push_back(u);
  }
  return Status::OK();
}

Status StateReader::GetFeatureVector(ml::FeatureVector* f) {
  HAZY_ASSIGN_OR_RETURN(*f, ml::FeatureVector::DecodeFrom(&data_));
  return Status::OK();
}

Status StateReader::GetModel(ml::LinearModel* m) {
  HAZY_RETURN_NOT_OK(GetDoubleVec(&m->w));
  return GetDouble(&m->b);
}

Status StateReader::GetKernelModel(ml::KernelModel* m) {
  uint8_t kind = 0;
  HAZY_RETURN_NOT_OK(GetU8(&kind));
  m->kind = static_cast<ml::KernelKind>(kind);
  HAZY_RETURN_NOT_OK(GetDouble(&m->gamma));
  uint64_t n = 0;
  HAZY_RETURN_NOT_OK(GetU64(&n));
  HAZY_RETURN_NOT_OK(CheckCount(n));
  m->support.clear();
  m->support.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ml::FeatureVector f;
    HAZY_RETURN_NOT_OK(GetFeatureVector(&f));
    m->support.push_back(std::move(f));
  }
  return GetDoubleVec(&m->coeffs);
}

}  // namespace hazy::persist
