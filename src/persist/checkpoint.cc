#include "persist/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "core/view_factory.h"
#include "engine/database.h"
#include "features/feature_function.h"
#include "persist/serde.h"
#include "storage/coding.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace hazy::persist {

using engine::ClassificationViewDef;
using engine::ManagedView;
using storage::ColumnType;
using storage::Row;
using storage::Schema;
using storage::Value;

namespace {

// ---------------------------------------------------------------------------
// Header page (page 0).
// ---------------------------------------------------------------------------

// The bytes "HAZYDB1\0" read as a little-endian u64.
constexpr uint64_t kHeaderMagic = 0x00314244595A4148ull;
// v2: sparse feature-vector payloads switched from interleaved (idx, val)
// pairs to parallel arrays (all indices, then all values) for the
// zero-copy scan path. v1 files would misparse, so they are rejected by
// the version check rather than read.
// v3: every page reserves a trailing LSN footer for the write-ahead log
// (storage/page.h), and the master record persists the pager free list.
// v2 page layouts would misparse, so they are rejected likewise.
constexpr uint32_t kFormatVersion = 3;
constexpr size_t kMagicOff = 0;
constexpr size_t kVersionOff = 8;
constexpr size_t kMasterHeadOff = 12;
constexpr size_t kEpochOff = 16;

constexpr uint32_t kMasterTag = MakeTag('H', 'Z', 'M', 'R');
constexpr uint32_t kViewStateTag = MakeTag('M', 'V', 'S', 'T');

// Chain-page layout: u32 next page, u32 used bytes, payload.
constexpr size_t kChainHeaderSize = 8;
constexpr size_t kChainCapacity = storage::kPageUsableSize - kChainHeaderSize;

int64_t RowKeyFor(uint64_t epoch, int64_t view_id) {
  return static_cast<int64_t>(epoch) * kMaxViewsPerDatabase + view_id;
}

}  // namespace

// ---------------------------------------------------------------------------
// Definition / options serialization.
// ---------------------------------------------------------------------------

void PutViewDef(StateWriter* w, const ClassificationViewDef& def) {
  w->PutString(def.view_name);
  w->PutString(def.entity_table);
  w->PutString(def.entity_key);
  w->PutU32(static_cast<uint32_t>(def.entity_text_columns.size()));
  for (const auto& c : def.entity_text_columns) w->PutString(c);
  w->PutString(def.label_table);
  w->PutString(def.label_column);
  w->PutString(def.example_table);
  w->PutString(def.example_key);
  w->PutString(def.example_label);
  w->PutString(def.feature_function);
  w->PutU8(static_cast<uint8_t>(def.method));
  w->PutBool(def.method_specified);
  w->PutU8(static_cast<uint8_t>(def.architecture));
  w->PutU8(static_cast<uint8_t>(def.mode));
}

Status GetViewDef(StateReader* r, ClassificationViewDef* def) {
  HAZY_RETURN_NOT_OK(r->GetString(&def->view_name));
  HAZY_RETURN_NOT_OK(r->GetString(&def->entity_table));
  HAZY_RETURN_NOT_OK(r->GetString(&def->entity_key));
  uint32_t n = 0;
  HAZY_RETURN_NOT_OK(r->GetU32(&n));
  HAZY_RETURN_NOT_OK(r->CheckCount(n));
  def->entity_text_columns.assign(n, {});
  for (auto& c : def->entity_text_columns) HAZY_RETURN_NOT_OK(r->GetString(&c));
  HAZY_RETURN_NOT_OK(r->GetString(&def->label_table));
  HAZY_RETURN_NOT_OK(r->GetString(&def->label_column));
  HAZY_RETURN_NOT_OK(r->GetString(&def->example_table));
  HAZY_RETURN_NOT_OK(r->GetString(&def->example_key));
  HAZY_RETURN_NOT_OK(r->GetString(&def->example_label));
  HAZY_RETURN_NOT_OK(r->GetString(&def->feature_function));
  uint8_t u = 0;
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  def->method = static_cast<ml::LossKind>(u);
  HAZY_RETURN_NOT_OK(r->GetBool(&def->method_specified));
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  def->architecture = static_cast<core::Architecture>(u);
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  def->mode = static_cast<core::Mode>(u);
  return Status::OK();
}

namespace {

void PutViewOptions(StateWriter* w, const core::ViewOptions& o) {
  w->PutU8(static_cast<uint8_t>(o.mode));
  w->PutU8(static_cast<uint8_t>(o.sgd.loss));
  w->PutDouble(o.sgd.lambda);
  w->PutDouble(o.sgd.eta0);
  w->PutI32(o.sgd.steps_per_example);
  w->PutBool(o.sgd.train_bias);
  w->PutDouble(o.sgd.bias_multiplier);
  w->PutDouble(o.holder_p);
  w->PutBool(o.monotone_water);
  w->PutU8(static_cast<uint8_t>(o.strategy));
  w->PutDouble(o.alpha);
  w->PutI32(o.periodic_period);
  w->PutU8(static_cast<uint8_t>(o.cost_model));
  w->PutU64(o.hybrid_buffer_capacity);
}

Status GetViewOptions(StateReader* r, core::ViewOptions* o) {
  uint8_t u = 0;
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  o->mode = static_cast<core::Mode>(u);
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  o->sgd.loss = static_cast<ml::LossKind>(u);
  HAZY_RETURN_NOT_OK(r->GetDouble(&o->sgd.lambda));
  HAZY_RETURN_NOT_OK(r->GetDouble(&o->sgd.eta0));
  HAZY_RETURN_NOT_OK(r->GetI32(&o->sgd.steps_per_example));
  HAZY_RETURN_NOT_OK(r->GetBool(&o->sgd.train_bias));
  HAZY_RETURN_NOT_OK(r->GetDouble(&o->sgd.bias_multiplier));
  HAZY_RETURN_NOT_OK(r->GetDouble(&o->holder_p));
  HAZY_RETURN_NOT_OK(r->GetBool(&o->monotone_water));
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  o->strategy = static_cast<core::StrategyKind>(u);
  HAZY_RETURN_NOT_OK(r->GetDouble(&o->alpha));
  HAZY_RETURN_NOT_OK(r->GetI32(&o->periodic_period));
  HAZY_RETURN_NOT_OK(r->GetU8(&u));
  o->cost_model = static_cast<core::CostModel>(u);
  uint64_t cap = 0;
  HAZY_RETURN_NOT_OK(r->GetU64(&cap));
  o->hybrid_buffer_capacity = cap;
  return Status::OK();
}

Schema ViewsSchema() {
  return Schema({{"row_key", ColumnType::kInt64},
                 {"view_id", ColumnType::kInt64},
                 {"name", ColumnType::kText},
                 {"arch", ColumnType::kText},
                 {"epoch", ColumnType::kInt64}});
}

Schema ViewStateSchema() {
  return Schema({{"row_key", ColumnType::kInt64},
                 {"view_id", ColumnType::kInt64},
                 {"epoch", ColumnType::kInt64},
                 {"state", ColumnType::kText}});
}

}  // namespace

bool IsReservedTableName(std::string_view name) {
  constexpr std::string_view kPrefix = "__hazy";
  if (name.size() < kPrefix.size()) return false;
  return EqualsIgnoreCase(name.substr(0, kPrefix.size()), kPrefix);
}

bool IsHazyHeaderPage(const char* page0) {
  return storage::DecodeFixed64(page0 + kMagicOff) == kHeaderMagic;
}

Status ViewCheckpointer::InitFresh() {
  HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->New());
  if (h.page_id() != 0) {
    return Status::Internal("header page must be page 0 of a fresh file");
  }
  char* d = h.data();
  storage::EncodeFixed64(d + kMagicOff, kHeaderMagic);
  storage::EncodeFixed32(d + kVersionOff, kFormatVersion);
  storage::EncodeFixed32(d + kMasterHeadOff, storage::kInvalidPageId);
  storage::EncodeFixed64(d + kEpochOff, 0);
  h.MarkDirty();
  h.Release();
  db_->checkpoint_epoch_ = 0;
  // Make the header durable immediately: a reopen must identify the file as
  // a (still empty) hazy database, and a zeroed page 0 is indistinguishable
  // from a foreign file, which Recover refuses to touch.
  HAZY_RETURN_NOT_OK(db_->pool_->FlushAll());
  return db_->pager_->Sync();
}

Status ViewCheckpointer::EnsureSystemTables() {
  if (!db_->catalog_->HasTable(kViewsTableName)) {
    HAZY_RETURN_NOT_OK(
        db_->catalog_->CreateTable(kViewsTableName, ViewsSchema(), 0).status());
  }
  if (!db_->catalog_->HasTable(kViewStateTableName)) {
    HAZY_RETURN_NOT_OK(
        db_->catalog_->CreateTable(kViewStateTableName, ViewStateSchema(), 0).status());
  }
  return Status::OK();
}

Status ViewCheckpointer::DeleteRowsWhere(
    const std::function<bool(uint64_t epoch)>& stale) {
  for (const char* table_name : {kViewsTableName, kViewStateTableName}) {
    HAZY_ASSIGN_OR_RETURN(storage::Table * table, db_->catalog_->GetTable(table_name));
    const Schema& schema = table->schema();
    HAZY_ASSIGN_OR_RETURN(size_t key_idx, schema.IndexOf("row_key"));
    HAZY_ASSIGN_OR_RETURN(size_t epoch_idx, schema.IndexOf("epoch"));
    std::vector<int64_t> keys;
    HAZY_RETURN_NOT_OK(table->Scan([&](const Row& row) {
      if (std::holds_alternative<int64_t>(row[epoch_idx]) &&
          stale(static_cast<uint64_t>(std::get<int64_t>(row[epoch_idx])))) {
        keys.push_back(std::get<int64_t>(row[key_idx]));
      }
      return true;
    }));
    for (int64_t key : keys) HAZY_RETURN_NOT_OK(table->DeleteByKey(key));
  }
  return Status::OK();
}

Status ViewCheckpointer::CollectGarbageRows(uint64_t keep_epoch) {
  // Rows whose epoch is not the last durable one are either superseded or
  // orphans of a checkpoint that never committed its header flip.
  return DeleteRowsWhere([&](uint64_t e) { return e != keep_epoch; });
}

Status ViewCheckpointer::SerializeViewState(const ManagedView& mv, std::string* blob) {
  StateWriter w(blob);
  w.PutTag(kViewStateTag);
  PutViewDef(&w, mv.def_);
  w.PutU32(static_cast<uint32_t>(mv.labels_.size()));
  for (const auto& l : mv.labels_) w.PutString(l);
  w.PutU64(mv.example_log_.size());
  for (const auto& [id, sign] : mv.example_log_) {
    w.PutI64(id);
    w.PutI32(sign);
  }
  mv.feature_fn_->SaveState(&w);
  PutViewOptions(&w, db_->EffectiveViewOptions(mv.def_));
  return mv.view_->SaveState(&w);
}

Status ViewCheckpointer::RestoreViewFromBlob(std::string_view blob) {
  StateReader r(blob);
  HAZY_RETURN_NOT_OK(r.ExpectTag(kViewStateTag));

  auto mv = std::make_unique<ManagedView>();
  mv->db_ = db_;
  HAZY_RETURN_NOT_OK(GetViewDef(&r, &mv->def_));

  uint32_t num_labels = 0;
  HAZY_RETURN_NOT_OK(r.GetU32(&num_labels));
  HAZY_RETURN_NOT_OK(r.CheckCount(num_labels));
  mv->labels_.assign(num_labels, {});
  for (auto& l : mv->labels_) HAZY_RETURN_NOT_OK(r.GetString(&l));

  uint64_t log_len = 0;
  HAZY_RETURN_NOT_OK(r.GetU64(&log_len));
  HAZY_RETURN_NOT_OK(r.CheckCount(log_len, 12));  // i64 id + i32 sign
  mv->example_log_.reserve(log_len);
  for (uint64_t i = 0; i < log_len; ++i) {
    int64_t id = 0;
    int32_t sign = 0;
    HAZY_RETURN_NOT_OK(r.GetI64(&id));
    HAZY_RETURN_NOT_OK(r.GetI32(&sign));
    mv->example_log_.emplace_back(id, sign);
  }

  HAZY_ASSIGN_OR_RETURN(mv->feature_fn_,
                        features::MakeFeatureFunction(mv->def_.feature_function));
  HAZY_RETURN_NOT_OK(mv->feature_fn_->LoadState(&r));

  core::ViewOptions vopts;
  HAZY_RETURN_NOT_OK(GetViewOptions(&r, &vopts));
  HAZY_ASSIGN_OR_RETURN(mv->view_, core::MakeView(mv->def_.architecture, vopts,
                                                  db_->pool_.get()));
  HAZY_RETURN_NOT_OK(mv->view_->LoadState(&r));

  ManagedView* raw = db_->AdoptView(std::move(mv));
  HAZY_RETURN_NOT_OK(db_->ArmTriggers(raw));
  // Seed and publish the restored view's first read epoch — recovered
  // databases serve snapshot reads immediately, answering exactly as the
  // checkpointed state did.
  return raw->PublishEpoch();
}

Status ViewCheckpointer::WriteViewRows(uint64_t epoch) {
  HAZY_ASSIGN_OR_RETURN(storage::Table * views_table,
                        db_->catalog_->GetTable(kViewsTableName));
  HAZY_ASSIGN_OR_RETURN(storage::Table * state_table,
                        db_->catalog_->GetTable(kViewStateTableName));
  for (size_t i = 0; i < db_->views_.size(); ++i) {
    const ManagedView& mv = *db_->views_[i];
    const int64_t view_id = static_cast<int64_t>(i);
    const int64_t row_key = RowKeyFor(epoch, view_id);

    std::string blob;
    HAZY_RETURN_NOT_OK(SerializeViewState(mv, &blob));

    HAZY_RETURN_NOT_OK(state_table->Insert(
        Row{row_key, view_id, static_cast<int64_t>(epoch), std::move(blob)}));
    HAZY_RETURN_NOT_OK(views_table->Insert(Row{row_key, view_id, mv.def_.view_name,
                                               std::string(core::ArchitectureToString(
                                                   mv.def_.architecture)),
                                               static_cast<int64_t>(epoch)}));
  }
  return Status::OK();
}

Status ViewCheckpointer::WriteMasterRecord(uint64_t epoch, uint32_t* new_head) {
  std::string rec;
  StateWriter w(&rec);
  w.PutTag(kMasterTag);
  w.PutU64(epoch);
  const auto names = db_->catalog_->TableNames();
  w.PutU32(static_cast<uint32_t>(names.size()));
  for (const auto& name : names) {
    HAZY_ASSIGN_OR_RETURN(storage::Table * table, db_->catalog_->GetTable(name));
    w.PutString(name);
    const Schema& schema = table->schema();
    w.PutU32(static_cast<uint32_t>(schema.num_columns()));
    for (const auto& col : schema.columns()) {
      w.PutString(col.name);
      w.PutU8(static_cast<uint8_t>(col.type));
    }
    w.PutBool(table->primary_key().has_value());
    w.PutU32(static_cast<uint32_t>(table->primary_key().value_or(0)));
    storage::HeapFileMeta meta = table->heap_meta();
    w.PutU32(meta.first_page);
    w.PutU32(meta.last_page);
    w.PutU64(meta.num_records);
    w.PutU64(meta.num_pages);
    w.PutU64(meta.num_overflow_pages);
  }

  // The record ends with the pager free list, so a recovered database knows
  // exactly which pages the durable image does NOT own. The chain pages are
  // allocated *before* the list is serialized — each allocation either pops
  // the free list (shrinking the record) or extends the file (leaving it
  // unchanged), so the loop converges and the persisted list is exactly the
  // post-commit free state. A trailing over-allocated page simply carries
  // zero payload bytes.
  storage::Pager* pager = db_->pager_.get();
  auto record_size = [&]() {
    return rec.size() + 4 +
           4 * (pager->free_list().size() + pager->quarantined().size());
  };
  auto pages_for = [](size_t len) {
    return std::max<size_t>(1, (len + kChainCapacity - 1) / kChainCapacity);
  };
  std::vector<storage::PageHandle> pages;
  while (pages.size() < pages_for(record_size())) {
    HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->New());
    pages.push_back(std::move(h));
  }
  w.PutU32(static_cast<uint32_t>(pager->free_list().size() +
                                 pager->quarantined().size()));
  // Quarantined pages are released into the free list at this checkpoint's
  // commit point, so they are free pages of the image being written.
  for (uint32_t pid : pager->free_list()) w.PutU32(pid);
  for (uint32_t pid : pager->quarantined()) w.PutU32(pid);

  size_t off = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    char* d = pages[i].data();
    uint32_t next = i + 1 < pages.size() ? pages[i + 1].page_id()
                                         : storage::kInvalidPageId;
    size_t chunk = std::min(kChainCapacity, rec.size() - off);
    storage::EncodeFixed32(d, next);
    storage::EncodeFixed32(d + 4, static_cast<uint32_t>(chunk));
    std::memcpy(d + kChainHeaderSize, rec.data() + off, chunk);
    off += chunk;
    pages[i].MarkDirty();
  }
  *new_head = pages.front().page_id();
  return Status::OK();
}

Status ViewCheckpointer::ReadMasterRecord(uint32_t head, std::string* out,
                                          std::vector<uint32_t>* chain_pages) {
  out->clear();
  uint32_t pid = head;
  // A chain can never be longer than the file; a corrupted next pointer
  // that loops back must fail with Corruption, not hang Open.
  uint64_t visited = 0;
  const uint64_t max_pages = db_->pager_->num_pages();
  while (pid != storage::kInvalidPageId) {
    if (++visited > max_pages) {
      return Status::Corruption("master-catalog chain is cyclic or overlong");
    }
    if (chain_pages != nullptr) chain_pages->push_back(pid);
    HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->Fetch(pid));
    const char* d = h.data();
    uint32_t next = storage::DecodeFixed32(d);
    uint32_t used = storage::DecodeFixed32(d + 4);
    if (used > kChainCapacity) {
      return Status::Corruption("master-catalog chain page with invalid length");
    }
    out->append(d + kChainHeaderSize, used);
    pid = next;
  }
  return Status::OK();
}

Status ViewCheckpointer::FreeChain(uint32_t head) {
  uint32_t pid = head;
  uint64_t visited = 0;
  const uint64_t max_pages = db_->pager_->num_pages();
  while (pid != storage::kInvalidPageId) {
    if (++visited > max_pages) {
      return Status::Corruption("master-catalog chain is cyclic or overlong");
    }
    uint32_t next;
    {
      HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->Fetch(pid));
      next = storage::DecodeFixed32(h.data());
    }
    db_->pool_->FreePage(pid);
    pid = next;
  }
  return Status::OK();
}

StatusOr<uint64_t> ViewCheckpointer::Checkpoint() {
  if (db_->views_.size() > static_cast<size_t>(kMaxViewsPerDatabase)) {
    return Status::ResourceExhausted("too many classification views to checkpoint");
  }
  // Queued trigger work must land in the views before their state is frozen.
  for (const auto& mv : db_->views_) HAZY_RETURN_NOT_OK(mv->Flush());

  // The checkpoint's own system-table writes must not append logical WAL
  // records (the checkpoint IS the durability point they would replay
  // against). Before-image logging stays on: a crashed checkpoint's page
  // writes roll back like any other torn work.
  storage::WalLogicalPauseGuard pause(db_->wal_.get());

  HAZY_RETURN_NOT_OK(EnsureSystemTables());

  const uint64_t epoch = db_->checkpoint_epoch_ + 1;
  // A crashed attempt at this same epoch number may have left orphan rows
  // whose keys would collide with this attempt's inserts. They are not
  // referenced by the durable image (the header never flipped to them), so
  // purging them — and only them — is safe before the commit.
  HAZY_RETURN_NOT_OK(DeleteRowsWhere([&](uint64_t e) { return e >= epoch; }));
  HAZY_RETURN_NOT_OK(WriteViewRows(epoch));

  // Read the old chain head before anything overwrites the header.
  uint32_t old_head = storage::kInvalidPageId;
  {
    HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->Fetch(0));
    old_head = storage::DecodeFixed32(h.data() + kMasterHeadOff);
  }

  // The master record snapshots heap metadata, so it must be built after
  // every row write, and be durable before the header points at it.
  uint32_t new_head = storage::kInvalidPageId;
  HAZY_RETURN_NOT_OK(WriteMasterRecord(epoch, &new_head));
  HAZY_RETURN_NOT_OK(db_->pool_->FlushAll());
  HAZY_RETURN_NOT_OK(db_->pager_->Sync());

  // The atomic commit: flip the header to the new chain + epoch.
  {
    HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->Fetch(0));
    char* d = h.data();
    storage::EncodeFixed64(d + kMagicOff, kHeaderMagic);
    storage::EncodeFixed32(d + kVersionOff, kFormatVersion);
    storage::EncodeFixed32(d + kMasterHeadOff, new_head);
    storage::EncodeFixed64(d + kEpochOff, epoch);
    h.MarkDirty();
  }
  HAZY_RETURN_NOT_OK(db_->pool_->FlushAll());
  HAZY_RETURN_NOT_OK(db_->pager_->Sync());

  // The new epoch is durable from here on: record it before any cleanup, so
  // a failed FreeChain cannot leave a stale in-memory epoch whose next GC
  // pass would collect the rows the on-disk header actually points to.
  db_->checkpoint_epoch_ = epoch;
  // Rebase the write-ahead log: everything it held is absorbed by the new
  // checkpoint. A crash between the header flip above and this reset leaves
  // a log whose base epoch trails the header — recovery rolls the file back
  // to the log's base and replays, landing on the same logical state.
  if (db_->wal_ != nullptr) HAZY_RETURN_NOT_OK(db_->wal_->Reset(epoch));
  // Pages freed (by any table or view) since the previous commit were
  // quarantined because the superseded image might still reference them;
  // that image is gone, so they can be recycled. From the first commit on,
  // future frees quarantine likewise.
  db_->pager_->ReleaseQuarantinedPages();
  db_->pager_->EnableFreeQuarantine();
  if (old_head != storage::kInvalidPageId) HAZY_RETURN_NOT_OK(FreeChain(old_head));
  // GC superseded/orphan rows only now, after the flip: deleting a row
  // frees its overflow chain for reuse, so rows referenced by the durable
  // image must never be deleted while a newer epoch could still fail —
  // otherwise a crash mid-checkpoint would leave dangling stubs over
  // reused pages. Pages freed here are reused at the earliest by the next
  // checkpoint, by which time this epoch is the durable one.
  HAZY_RETURN_NOT_OK(CollectGarbageRows(epoch));
  return epoch;
}

Status ViewCheckpointer::DisposeWal(bool* replay_pending) {
  *replay_pending = false;
  storage::Wal* wal = db_->wal_.get();
  if (wal == nullptr || !wal->is_open()) return Status::OK();

  // Raw header read, bypassing the pool: the header itself may be torn or
  // mid-flip and about to be rolled back.
  char hdr[storage::kPageSize];
  HAZY_RETURN_NOT_OK(db_->pager_->Read(0, hdr));
  const uint64_t hdr_epoch = storage::DecodeFixed64(hdr + kEpochOff);
  const bool hdr_valid = storage::DecodeFixed64(hdr + kMagicOff) == kHeaderMagic;

  // A file that does not identify as a hazy database is never written to —
  // not even by a rollback whose page-0 image looks plausible: the database
  // may have been deleted and the path re-used by a foreign file while a
  // stale sidecar log survived. (Recover's own magic check will report the
  // corruption; an empty log loses nothing by being left alone.)
  if (!hdr_valid) {
    if (wal->records().empty()) return Status::OK();
    return Status::Corruption(
        StrFormat("%s is not a hazy database file (stale write-ahead log "
                  "present at %s)",
                  db_->path_.c_str(), wal->path().c_str()));
  }

  bool wal_current = false;
  if (!wal->records().empty()) {
    if (wal->base_epoch() == hdr_epoch) {
      // Normal crash: the log is based on the durable checkpoint.
      wal_current = true;
    } else {
      // The header advanced past the log's base (a crash inside or just
      // after a checkpoint). If the log holds page 0's checkpoint image for
      // its own base epoch, it belongs to this file's previous epoch: roll
      // back to that checkpoint and replay — same logical state, exactly.
      // Otherwise the log is stale (the newer checkpoint already absorbed
      // it): discard it.
      for (const auto& r : wal->records()) {
        if (r.type != storage::WalRecordType::kBeforeImage) continue;
        if (r.payload.size() < 4 + storage::kPageSize) continue;
        if (storage::DecodeFixed32(r.payload.data()) != 0) continue;
        const char* img = r.payload.data() + 4;
        wal_current = storage::DecodeFixed64(img + kMagicOff) == kHeaderMagic &&
                      storage::DecodeFixed64(img + kEpochOff) == wal->base_epoch();
        break;
      }
    }
  }
  if (!wal_current) {
    // Nothing to roll back or replay; rebase the log on the durable epoch.
    return wal->Reset(hdr_epoch);
  }

  // Roll the file back to exactly the base checkpoint: every page dirtied
  // since then has its checkpoint-time image in the log (at most one per
  // page — later dirtyings of a logged page are not re-imaged).
  size_t rolled_back = 0;
  for (const auto& r : wal->records()) {
    if (r.type != storage::WalRecordType::kBeforeImage) continue;
    if (r.payload.size() != 4 + storage::kPageSize) {
      return Status::Corruption("wal before-image record has wrong size");
    }
    uint32_t pid = storage::DecodeFixed32(r.payload.data());
    HAZY_RETURN_NOT_OK(db_->pager_->Write(pid, r.payload.data() + 4));
    ++rolled_back;
  }
  if (rolled_back > 0) HAZY_RETURN_NOT_OK(db_->pager_->Sync());
  for (const auto& r : wal->records()) {
    if (r.type == storage::WalRecordType::kLogical) {
      *replay_pending = true;
      break;
    }
  }
  return Status::OK();
}

Status ViewCheckpointer::SweepFreePages(const std::vector<uint32_t>& chain_pages,
                                        const std::vector<uint32_t>& persisted_free) {
  const uint32_t num_pages = db_->pager_->num_pages();
  std::vector<bool> live(num_pages, false);
  if (num_pages > 0) live[0] = true;
  auto mark = [&](uint32_t pid) -> Status {
    if (pid >= num_pages) {
      return Status::Corruption(
          StrFormat("live page %u beyond end of file (%u pages)", pid, num_pages));
    }
    live[pid] = true;
    return Status::OK();
  };
  for (uint32_t pid : chain_pages) HAZY_RETURN_NOT_OK(mark(pid));
  std::vector<uint32_t> table_pages;
  for (const auto& name : db_->catalog_->TableNames()) {
    HAZY_ASSIGN_OR_RETURN(storage::Table * table, db_->catalog_->GetTable(name));
    table_pages.clear();
    HAZY_RETURN_NOT_OK(table->CollectPages(&table_pages));
    for (uint32_t pid : table_pages) HAZY_RETURN_NOT_OK(mark(pid));
  }
  // Cross-check against the free list the checkpoint persisted: a page both
  // declared free and reachable means the image is self-contradictory.
  for (uint32_t pid : persisted_free) {
    if (pid < num_pages && live[pid]) {
      return Status::Corruption(
          StrFormat("page %u is both reachable and on the persisted free list", pid));
    }
  }
  // Everything unreachable — superseded view-state chains from before the
  // restart, pages allocated after the checkpoint and rolled back — is free.
  std::vector<uint32_t> free;
  free.reserve(num_pages);
  for (uint32_t pid = 1; pid < num_pages; ++pid) {
    if (!live[pid]) free.push_back(pid);
  }
  db_->pager_->SetFreeList(std::move(free));
  return Status::OK();
}

Status ViewCheckpointer::Recover() {
  // Phase 1: settle the write-ahead log — roll the file back to the
  // checkpoint its before-images protect, or discard it if a completed
  // checkpoint already absorbed it.
  bool replay_pending = false;
  HAZY_RETURN_NOT_OK(DisposeWal(&replay_pending));

  uint32_t master_head = storage::kInvalidPageId;
  uint64_t epoch = 0;
  {
    HAZY_ASSIGN_OR_RETURN(storage::PageHandle h, db_->pool_->Fetch(0));
    const char* d = h.data();
    uint64_t magic = storage::DecodeFixed64(d + kMagicOff);
    if (magic != kHeaderMagic) {
      // This also catches an all-zero page 0. InitFresh syncs the header
      // before anything else touches the file, so a zeroed header means a
      // foreign file (e.g. a sparse image) — never reformat it; the only
      // hazy file that can look like this died inside InitFresh itself and
      // holds nothing worth keeping.
      return Status::Corruption(
          StrFormat("%s is not a hazy database file", db_->path_.c_str()));
    }
    uint32_t version = storage::DecodeFixed32(d + kVersionOff);
    if (version != kFormatVersion) {
      return Status::NotSupported(StrFormat("unsupported format version %u", version));
    }
    master_head = storage::DecodeFixed32(d + kMasterHeadOff);
    epoch = storage::DecodeFixed64(d + kEpochOff);
  }
  db_->checkpoint_epoch_ = epoch;
  // A formatted file that was never checkpointed has no catalog to restore —
  // but the log may still hold its whole committed history, replayable onto
  // the empty database.
  if (master_head == storage::kInvalidPageId) {
    HAZY_RETURN_NOT_OK(SweepFreePages({}, {}));
    if (replay_pending) return db_->ReplayWal();
    return Status::OK();
  }
  // A durable image exists: freed pages must be quarantined until the next
  // commit supersedes it (see Pager::EnableFreeQuarantine).
  db_->pager_->EnableFreeQuarantine();

  std::string rec;
  std::vector<uint32_t> chain_pages;
  HAZY_RETURN_NOT_OK(ReadMasterRecord(master_head, &rec, &chain_pages));
  StateReader r(rec);
  HAZY_RETURN_NOT_OK(r.ExpectTag(kMasterTag));
  uint64_t rec_epoch = 0;
  HAZY_RETURN_NOT_OK(r.GetU64(&rec_epoch));
  if (rec_epoch != epoch) {
    return Status::Corruption("master record epoch does not match header");
  }
  uint32_t table_count = 0;
  HAZY_RETURN_NOT_OK(r.GetU32(&table_count));
  HAZY_RETURN_NOT_OK(r.CheckCount(table_count));
  for (uint32_t i = 0; i < table_count; ++i) {
    std::string name;
    HAZY_RETURN_NOT_OK(r.GetString(&name));
    uint32_t ncols = 0;
    HAZY_RETURN_NOT_OK(r.GetU32(&ncols));
    HAZY_RETURN_NOT_OK(r.CheckCount(ncols));
    std::vector<storage::Column> cols;
    cols.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      storage::Column col;
      HAZY_RETURN_NOT_OK(r.GetString(&col.name));
      uint8_t t = 0;
      HAZY_RETURN_NOT_OK(r.GetU8(&t));
      col.type = static_cast<ColumnType>(t);
      cols.push_back(std::move(col));
    }
    bool has_pk = false;
    uint32_t pk = 0;
    HAZY_RETURN_NOT_OK(r.GetBool(&has_pk));
    HAZY_RETURN_NOT_OK(r.GetU32(&pk));
    storage::HeapFileMeta meta;
    HAZY_RETURN_NOT_OK(r.GetU32(&meta.first_page));
    HAZY_RETURN_NOT_OK(r.GetU32(&meta.last_page));
    HAZY_RETURN_NOT_OK(r.GetU64(&meta.num_records));
    HAZY_RETURN_NOT_OK(r.GetU64(&meta.num_pages));
    HAZY_RETURN_NOT_OK(r.GetU64(&meta.num_overflow_pages));
    HAZY_RETURN_NOT_OK(db_->catalog_
                           ->AttachTable(name, Schema(std::move(cols)),
                                         has_pk ? std::optional<size_t>(pk)
                                                : std::nullopt,
                                         meta)
                           .status());
  }
  uint32_t free_count = 0;
  HAZY_RETURN_NOT_OK(r.GetU32(&free_count));
  HAZY_RETURN_NOT_OK(r.CheckCount(free_count, 4));
  std::vector<uint32_t> persisted_free;
  persisted_free.reserve(free_count);
  for (uint32_t i = 0; i < free_count; ++i) {
    uint32_t pid = 0;
    HAZY_RETURN_NOT_OK(r.GetU32(&pid));
    persisted_free.push_back(pid);
  }

  // Phase 2: reclaim everything the image does not own — the pre-restart
  // view-state chains and any rolled-back post-checkpoint allocations —
  // *before* the views rebuild into (and the redo replays into) fresh pages,
  // so a checkpoint+restart cycle reuses pages instead of growing the file.
  HAZY_RETURN_NOT_OK(SweepFreePages(chain_pages, persisted_free));

  // Phase 3: rebuild the views from the checkpoint (zero retraining).
  HAZY_RETURN_NOT_OK(RecoverViews(epoch));

  // Phase 4: redo — replay committed post-checkpoint operations through the
  // trigger machinery so the views re-train on them exactly as they did
  // live.
  if (replay_pending) return db_->ReplayWal();
  return Status::OK();
}

Status ViewCheckpointer::RecoverViews(uint64_t epoch) {
  if (!db_->catalog_->HasTable(kViewsTableName)) return Status::OK();
  HAZY_ASSIGN_OR_RETURN(storage::Table * views_table,
                        db_->catalog_->GetTable(kViewsTableName));
  HAZY_ASSIGN_OR_RETURN(storage::Table * state_table,
                        db_->catalog_->GetTable(kViewStateTableName));

  std::vector<int64_t> view_ids;
  HAZY_RETURN_NOT_OK(views_table->Scan([&](const Row& row) {
    if (std::holds_alternative<int64_t>(row[4]) &&
        static_cast<uint64_t>(std::get<int64_t>(row[4])) == epoch) {
      view_ids.push_back(std::get<int64_t>(row[1]));
    }
    return true;
  }));
  std::sort(view_ids.begin(), view_ids.end());

  for (int64_t view_id : view_ids) {
    HAZY_ASSIGN_OR_RETURN(Row state_row,
                          state_table->GetByKey(RowKeyFor(epoch, view_id)));
    if (!std::holds_alternative<std::string>(state_row[3])) {
      return Status::Corruption("view state row has no state blob");
    }
    HAZY_RETURN_NOT_OK(RestoreViewFromBlob(std::get<std::string>(state_row[3])));
  }
  return Status::OK();
}

}  // namespace hazy::persist
