// Binary serialization for checkpointable state (the persist subsystem's
// lowest layer). Everything the classification-view stack must carry across
// a process restart — linear models, kernel expansions, random-feature maps,
// water lines, replay logs, per-architecture incremental state — is written
// through a StateWriter and read back through a StateReader.
//
// The format is the storage layer's little-endian fixed-width coding plus
// 4-byte section tags. Tags make a truncated or mis-ordered blob fail fast
// with Corruption instead of silently mis-restoring a model; they are the
// state-blob analogue of the page-level magic numbers.

#ifndef HAZY_PERSIST_SERDE_H_
#define HAZY_PERSIST_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ml/kernel_model.h"
#include "ml/model.h"
#include "ml/vector.h"
#include "storage/coding.h"

namespace hazy::persist {

/// Builds a 4-byte section tag from a 4-character literal.
constexpr uint32_t MakeTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24);
}

/// \brief Appends typed values to a byte buffer.
class StateWriter {
 public:
  explicit StateWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v) { storage::PutFixed32(out_, v); }
  void PutU64(uint64_t v) { storage::PutFixed64(out_, v); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) { storage::PutDouble(out_, v); }
  void PutString(std::string_view s) { storage::PutLengthPrefixed(out_, s); }
  void PutTag(uint32_t tag) { PutU32(tag); }

  void PutDoubleVec(const std::vector<double>& v);
  void PutU64Vec(const std::vector<uint64_t>& v);
  void PutFeatureVector(const ml::FeatureVector& f);
  void PutModel(const ml::LinearModel& m);
  void PutKernelModel(const ml::KernelModel& m);

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

/// \brief Cursor over a serialized blob; every getter fails with Corruption
/// on truncation, and ExpectTag fails on a section mismatch.
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetBool(bool* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI32(int32_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* v);
  Status ExpectTag(uint32_t tag);

  Status GetDoubleVec(std::vector<double>* v);
  Status GetU64Vec(std::vector<uint64_t>* v);
  Status GetFeatureVector(ml::FeatureVector* f);
  Status GetModel(ml::LinearModel* m);
  Status GetKernelModel(ml::KernelModel* m);

  /// Validates an element count against the bytes left in the blob: every
  /// element occupies at least `min_bytes`, so a larger count is provably
  /// corrupt. Call before reserve()-ing count-sized containers — it turns a
  /// bit-flipped length prefix into Corruption instead of std::bad_alloc.
  Status CheckCount(uint64_t n, size_t min_bytes = 1) const;

  size_t remaining() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  Status Truncated(const char* what);

  std::string_view data_;
};

}  // namespace hazy::persist

#endif  // HAZY_PERSIST_SERDE_H_
