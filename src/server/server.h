// The Hazy network server: an epoll reactor feeding an admission-controlled
// worker pool, one Session per connection. This is the network analogue of
// the paper's §B.1 architecture — PostgreSQL talked to the Hazy process over
// IPC; remote clients talk to this server over the rpc/protocol.h framing.
//
//   reactor thread ──frames──▶ Dispatcher (bounded) ──▶ ThreadPool workers
//        ▲                          │ full? BUSY            │
//        └────────── Send ──────────┴────── response ───────┘

#ifndef HAZY_SERVER_SERVER_H_
#define HAZY_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/database.h"
#include "rpc/reactor.h"
#include "server/dispatch.h"
#include "server/session.h"

namespace hazy::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via port().
  /// Worker threads executing statements (the engine is single-writer, so
  /// extra workers mainly overlap parsing/encoding with execution).
  size_t worker_threads = 4;
  /// Admission depth: statements in flight (queued + running) before BUSY.
  size_t max_in_flight = 256;
  /// Connections accepted before new ones are turned away at accept().
  size_t max_connections = 65536;
};

/// \brief Socket server over one Database. Start() spawns the reactor
/// thread and returns; Stop() (or the destructor) drains and joins.
class Server : private rpc::ReactorHandler {
 public:
  Server(engine::Database* db, ServerOptions options = {});
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts serving. Fails on bind/listen errors.
  Status Start();

  /// Stops accepting, drains in-flight statements, joins the reactor.
  /// Idempotent.
  void Stop();

  /// Port actually bound (valid after Start()).
  uint16_t port() const { return reactor_.port(); }

  size_t num_connections() const { return reactor_.num_connections(); }

  /// Requests shed with BUSY since Start().
  uint64_t busy_rejections() const { return dispatcher_.rejected(); }

 private:
  // rpc::ReactorHandler (reactor thread).
  void OnConnect(uint64_t conn_id) override EXCLUDES(mu_);
  void OnFrame(uint64_t conn_id, const rpc::FrameView& frame) override;
  void OnDisconnect(uint64_t conn_id) override EXCLUDES(mu_);

  std::shared_ptr<Session> FindSession(uint64_t conn_id) EXCLUDES(mu_);

  engine::Database* db_;
  ServerOptions options_;
  Dispatcher dispatcher_;
  rpc::Reactor reactor_;
  std::thread reactor_thread_;
  bool started_ = false;
  /// Registry collector exporting shed/in-flight/connection levels
  /// (registered in Start, unregistered in Stop).
  uint64_t stats_collector_ = 0;

  Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_
      GUARDED_BY(mu_);
};

}  // namespace hazy::server

#endif  // HAZY_SERVER_SERVER_H_
