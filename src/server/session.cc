#include "server/session.h"

#include "common/strings.h"
#include "sql/metrics_result.h"
#include "sql/parser.h"

namespace hazy::server {

namespace {

/// Cap on prepared statements per session — a leaked PREPARE loop must not
/// grow server memory without bound.
constexpr size_t kMaxPreparedPerSession = 1024;

}  // namespace

Session::Session(uint64_t id, engine::Database* db)
    : id_(id), db_(db), executor_(db) {}

std::string Session::BusyFrame(uint32_t request_id) {
  std::string payload;
  rpc::EncodeErrorPayload(
      Status::ResourceExhausted("admission queue full; retry"), &payload);
  std::string frame;
  rpc::EncodeFrame(rpc::Opcode::kBusy, request_id, payload, &frame);
  return frame;
}

std::string Session::StatsFrame(const rpc::FrameView& frame) {
  sql::ResultSet rs = sql::MetricsResultSet(std::string(frame.payload));
  std::string payload;
  Status s = rs.Encode(&payload);
  if (!s.ok()) return ErrorFrame(frame.request_id, s);
  std::string out;
  rpc::EncodeFrame(rpc::Opcode::kResult, frame.request_id, payload, &out);
  return out;
}

std::string Session::ErrorFrame(uint32_t request_id, const Status& status) {
  std::string payload;
  rpc::EncodeErrorPayload(status, &payload);
  std::string frame;
  rpc::EncodeFrame(rpc::Opcode::kError, request_id, payload, &frame);
  return frame;
}

std::string Session::EmptyFrame(rpc::Opcode op, uint32_t request_id) {
  std::string frame;
  rpc::EncodeFrame(op, request_id, {}, &frame);
  return frame;
}

std::string Session::ResultFrame(uint32_t request_id, const sql::ResultSet& rs) {
  std::string payload;
  Status s = rs.Encode(&payload);
  if (!s.ok()) return ErrorFrame(request_id, s);
  std::string frame;
  rpc::EncodeFrame(rpc::Opcode::kResult, request_id, payload, &frame);
  return frame;
}

size_t Session::num_prepared() const {
  MutexLock lock(mu_);
  return prepared_.size();
}

StatusOr<sql::ResultSet> Session::RunQuery(const std::string& sql) {
  // Snapshot reads (SELECT over a view with a published epoch) answer from
  // immutable state and skip the whole-statement mutex entirely — they never
  // queue behind an ingest statement. Everything else serializes as before.
  auto stmt = sql::Parse(sql);
  if (stmt.ok() && sql::IsSnapshotRead(db_, *stmt)) {
    return executor_.Execute(*stmt);
  }
  std::lock_guard<std::recursive_mutex> stmt_lock(*db_->statement_mutex());
  // Re-run from text so the executor traces the statement (parse span,
  // latency histogram, slow log) exactly as before.
  return executor_.Execute(sql);
}

StatusOr<sql::ResultSet> Session::RunPrepared(
    const sql::PreparedStatement& stmt,
    const std::vector<storage::Value>& params) {
  if (sql::IsSnapshotRead(db_, stmt.stmt)) {
    return executor_.Execute(stmt, params);
  }
  std::lock_guard<std::recursive_mutex> stmt_lock(*db_->statement_mutex());
  return executor_.Execute(stmt, params);
}

std::string Session::HandleFrame(const rpc::FrameView& frame, bool* close_after) {
  *close_after = false;
  MutexLock lock(mu_);
  return HandleLocked(frame, close_after);
}

std::string Session::HandleLocked(const rpc::FrameView& frame, bool* close_after) {
  switch (frame.opcode) {
    case rpc::Opcode::kHello: {
      uint32_t version = 0;
      std::string client_name;
      Status s = rpc::DecodeHelloPayload(frame.payload, &version, &client_name);
      if (!s.ok()) return ErrorFrame(frame.request_id, s);
      if (version > rpc::kProtocolVersion) {
        return ErrorFrame(
            frame.request_id,
            Status::NotSupported(StrFormat(
                "client speaks protocol %u, server speaks %u", version,
                rpc::kProtocolVersion)));
      }
      std::string payload;
      rpc::EncodeHelloPayload(rpc::kProtocolVersion, "hazy", &payload);
      std::string out;
      rpc::EncodeFrame(rpc::Opcode::kHelloOk, frame.request_id, payload, &out);
      return out;
    }

    case rpc::Opcode::kQuery: {
      auto rs = RunQuery(std::string(frame.payload));
      if (!rs.ok()) return ErrorFrame(frame.request_id, rs.status());
      return ResultFrame(frame.request_id, *rs);
    }

    case rpc::Opcode::kPrepare: {
      if (prepared_.size() >= kMaxPreparedPerSession) {
        return ErrorFrame(frame.request_id,
                          Status::ResourceExhausted(StrFormat(
                              "session holds %zu prepared statements",
                              prepared_.size())));
      }
      auto tmpl = sql::ParseTemplate(std::string(frame.payload));
      if (!tmpl.ok()) return ErrorFrame(frame.request_id, tmpl.status());
      const uint32_t stmt_id = next_stmt_id_++;
      const uint32_t num_params = static_cast<uint32_t>(tmpl->num_params());
      prepared_.emplace(stmt_id, std::move(*tmpl));
      std::string payload;
      rpc::EncodePreparedPayload(stmt_id, num_params, &payload);
      std::string out;
      rpc::EncodeFrame(rpc::Opcode::kPrepared, frame.request_id, payload, &out);
      return out;
    }

    case rpc::Opcode::kExecPrepared: {
      uint32_t stmt_id = 0;
      std::vector<storage::Value> params;
      Status s = rpc::DecodeExecPayload(frame.payload, &stmt_id, &params);
      if (!s.ok()) return ErrorFrame(frame.request_id, s);
      auto it = prepared_.find(stmt_id);
      if (it == prepared_.end()) {
        return ErrorFrame(frame.request_id,
                          Status::NotFound(StrFormat(
                              "no prepared statement with id %u", stmt_id)));
      }
      auto rs = RunPrepared(it->second, params);
      if (!rs.ok()) return ErrorFrame(frame.request_id, rs.status());
      return ResultFrame(frame.request_id, *rs);
    }

    case rpc::Opcode::kCloseStmt: {
      uint32_t stmt_id = 0;
      Status s = rpc::DecodeCloseStmtPayload(frame.payload, &stmt_id);
      if (!s.ok()) return ErrorFrame(frame.request_id, s);
      if (prepared_.erase(stmt_id) == 0) {
        return ErrorFrame(frame.request_id,
                          Status::NotFound(StrFormat(
                              "no prepared statement with id %u", stmt_id)));
      }
      return EmptyFrame(rpc::Opcode::kStmtClosed, frame.request_id);
    }

    case rpc::Opcode::kStats:
      // Loopback path; the socket server answers this on the reactor thread
      // without entering the session at all.
      return StatsFrame(frame);

    case rpc::Opcode::kPing:
      return EmptyFrame(rpc::Opcode::kPong, frame.request_id);

    case rpc::Opcode::kGoodbye:
      *close_after = true;
      return EmptyFrame(rpc::Opcode::kGoodbyeOk, frame.request_id);

    default:
      return ErrorFrame(
          frame.request_id,
          Status::InvalidArgument(StrFormat("opcode %s is not a request",
                                            rpc::OpcodeName(frame.opcode))));
  }
}

}  // namespace hazy::server
