// Admission control between the reactor and the worker pool: a bounded
// in-flight (queued + running) statement count. When the bound is hit the
// server answers BUSY instead of queueing unboundedly — overload sheds load
// at the door rather than collapsing under it.

#ifndef HAZY_SERVER_DISPATCH_H_
#define HAZY_SERVER_DISPATCH_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/thread_pool.h"

namespace hazy::server {

struct DispatchOptions {
  /// Worker threads executing statements.
  size_t worker_threads = 4;
  /// Max statements admitted (queued + running). Beyond this, TryDispatch
  /// refuses and the caller sends BUSY.
  size_t max_in_flight = 256;
};

/// \brief Bounded-depth dispatcher over the shared ThreadPool.
///
/// Thread-safe. The in-flight count is decremented when `work` finishes, so
/// the bound covers queue depth plus running work.
class Dispatcher {
 public:
  explicit Dispatcher(DispatchOptions options)
      : options_(options),
        pool_(options.worker_threads == 0 ? 1 : options.worker_threads) {}

  /// Admits `work` if the in-flight bound allows; false means shed (BUSY).
  ///
  /// `after_release` (optional) runs on the worker after the slot is given
  /// back — response delivery belongs there, so that by the time a client
  /// can observe the response, the slot it occupied is free again. A serial
  /// client then never has its next statement shed by its own previous one.
  bool TryDispatch(std::function<void()> work,
                   std::function<void()> after_release = {}) {
    if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
        options_.max_in_flight) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    pool_.Submit([this, work = std::move(work),
                  after_release = std::move(after_release)]() {
      work();
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      if (after_release) after_release();
    });
    return true;
  }

  /// Blocks until every admitted task has finished.
  void Drain() { pool_.Wait(); }

  size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  const DispatchOptions& options() const { return options_; }

 private:
  DispatchOptions options_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> rejected_{0};
  ThreadPool pool_;
};

}  // namespace hazy::server

#endif  // HAZY_SERVER_DISPATCH_H_
