// Per-connection protocol state: one sql::Executor plus a prepared-statement
// table. Session::HandleFrame maps one request frame to one encoded response
// frame; the socket server and the in-process loopback transport both call
// it, which is what makes their response bytes identical.

#ifndef HAZY_SERVER_SESSION_H_
#define HAZY_SERVER_SESSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/database.h"
#include "rpc/protocol.h"
#include "sql/executor.h"

namespace hazy::server {

/// \brief One client session: executor + prepared statements, serialized
/// internally so pipelined frames from one connection can run on different
/// worker threads without racing the session state.
class Session {
 public:
  Session(uint64_t id, engine::Database* db);

  uint64_t id() const { return id_; }

  /// Processes one request frame and returns the encoded response frame.
  /// Errors never propagate — they become ERROR frames. `*close_after` is
  /// set for GOODBYE (the transport closes once the ack is flushed).
  std::string HandleFrame(const rpc::FrameView& frame, bool* close_after)
      EXCLUDES(mu_);

  /// The BUSY response the server sends when admission control sheds a
  /// request (built here so both transports shed with identical bytes).
  static std::string BusyFrame(uint32_t request_id);

  /// The STATS response: a metrics-registry snapshot as a kResult frame
  /// (payload of the request = substring filter). Static and lock-free with
  /// respect to session and statement state, so the server answers it on
  /// the reactor thread even when every worker is wedged.
  static std::string StatsFrame(const rpc::FrameView& frame);

  size_t num_prepared() const EXCLUDES(mu_);

 private:
  std::string HandleLocked(const rpc::FrameView& frame, bool* close_after)
      REQUIRES(mu_);

  // Frame builders (each returns one fully encoded frame).
  static std::string ErrorFrame(uint32_t request_id, const Status& status);
  static std::string EmptyFrame(rpc::Opcode op, uint32_t request_id);
  std::string ResultFrame(uint32_t request_id, const sql::ResultSet& rs);

  /// Runs one statement under the database-wide statement mutex (the engine
  /// is single-writer; see Database::statement_mutex()).
  StatusOr<sql::ResultSet> RunQuery(const std::string& sql);
  StatusOr<sql::ResultSet> RunPrepared(const sql::PreparedStatement& stmt,
                                       const std::vector<storage::Value>& params);

  const uint64_t id_;
  engine::Database* db_;
  sql::Executor executor_;

  mutable Mutex mu_;
  uint32_t next_stmt_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint32_t, sql::PreparedStatement> prepared_
      GUARDED_BY(mu_);
};

}  // namespace hazy::server

#endif  // HAZY_SERVER_SESSION_H_
