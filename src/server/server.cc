#include "server/server.h"

#include "obs/metrics.h"

namespace hazy::server {

namespace {

rpc::ReactorOptions MakeReactorOptions(const ServerOptions& o) {
  rpc::ReactorOptions r;
  r.host = o.host;
  r.port = o.port;
  r.max_connections = o.max_connections;
  return r;
}

}  // namespace

Server::Server(engine::Database* db, ServerOptions options)
    : db_(db),
      options_(options),
      dispatcher_(DispatchOptions{options.worker_threads, options.max_in_flight}),
      reactor_(MakeReactorOptions(options), this) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  HAZY_RETURN_NOT_OK(reactor_.Open());
  reactor_thread_ = std::thread([this] { reactor_.Run(); });
  started_ = true;
  stats_collector_ =
      obs::Registry::Global().RegisterCollector([this](obs::SampleList* out) {
        out->Counter("hazy_server_busy_shed_total", "",
                     static_cast<double>(dispatcher_.rejected()));
        out->Gauge("hazy_server_inflight", "",
                   static_cast<double>(dispatcher_.in_flight()));
        out->Gauge("hazy_server_connections", "",
                   static_cast<double>(reactor_.num_connections()));
      });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  obs::Registry::Global().UnregisterCollector(stats_collector_);
  reactor_.Stop();
  reactor_thread_.join();
  // Workers may still hold responses for connections the reactor no longer
  // serves; Send() drops those harmlessly. Drain so session state is quiet
  // before the maps are torn down.
  dispatcher_.Drain();
  MutexLock lock(mu_);
  sessions_.clear();
}

std::shared_ptr<Session> Server::FindSession(uint64_t conn_id) {
  MutexLock lock(mu_);
  auto it = sessions_.find(conn_id);
  return it == sessions_.end() ? nullptr : it->second;
}

void Server::OnConnect(uint64_t conn_id) {
  MutexLock lock(mu_);
  sessions_.emplace(conn_id, std::make_shared<Session>(conn_id, db_));
}

void Server::OnDisconnect(uint64_t conn_id) {
  MutexLock lock(mu_);
  // Workers holding the shared_ptr finish their statement; the session is
  // destroyed when the last one lets go.
  sessions_.erase(conn_id);
}

void Server::OnFrame(uint64_t conn_id, const rpc::FrameView& frame) {
  if (frame.opcode == rpc::Opcode::kStats) {
    // Answered right here on the reactor thread: STATS never queues behind
    // statements and never sheds as BUSY, so the metrics snapshot stays
    // reachable while the worker pool is saturated (or wedged).
    reactor_.Send(conn_id, Session::StatsFrame(frame));
    return;
  }
  std::shared_ptr<Session> session = FindSession(conn_id);
  if (session == nullptr) return;  // raced a close
  rpc::Frame owned = rpc::Frame::Copy(frame);
  // The statement runs under the admission slot; the response ships after
  // the slot is released (see Dispatcher::TryDispatch) so a serial client
  // never sees BUSY caused by its own just-answered request.
  struct Pending {
    std::string response;
    bool close_after = false;
  };
  auto pending = std::make_shared<Pending>();
  const bool admitted = dispatcher_.TryDispatch(
      [session = std::move(session), owned = std::move(owned), pending] {
        rpc::FrameView view{owned.opcode, owned.request_id, owned.payload};
        pending->response = session->HandleFrame(view, &pending->close_after);
      },
      [this, conn_id, pending] {
        reactor_.Send(conn_id, std::move(pending->response),
                      pending->close_after);
      });
  if (!admitted) {
    reactor_.Send(conn_id, Session::BusyFrame(frame.request_id));
  }
}

}  // namespace hazy::server
