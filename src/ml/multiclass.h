// One-versus-all multiclass reduction (paper B.5.4 / C.3): one binary
// linear model per class, trained sequentially; prediction takes the class
// whose model gives the largest eps. The multiclass classification view
// (core/multiclass_view.h) maintains one Hazy binary view per class using
// the same machinery.

#ifndef HAZY_ML_MULTICLASS_H_
#define HAZY_ML_MULTICLASS_H_

#include <cstdint>
#include <vector>

#include "ml/model.h"
#include "ml/sgd.h"
#include "ml/vector.h"

namespace hazy::ml {

/// A multiclass example: features plus a class index in [0, num_classes).
struct MulticlassExample {
  int64_t id = 0;
  FeatureVector features;
  int klass = 0;
};

/// \brief One-vs-all ensemble of binary SGD-trained linear models.
class OneVsAllClassifier {
 public:
  OneVsAllClassifier(int num_classes, SgdOptions options = {});

  /// Incrementally folds one multiclass example into all K binary models
  /// (positive for its class, negative for the rest).
  void AddExample(const MulticlassExample& ex);

  /// Predicted class: argmax_k eps_k(x).
  int Predict(const FeatureVector& x) const;

  /// Per-class decision value eps_k(x) = w_k·x − b_k.
  double EpsFor(int klass, const FeatureVector& x) const;

  int num_classes() const { return static_cast<int>(models_.size()); }
  const LinearModel& model(int klass) const { return models_[static_cast<size_t>(klass)]; }

 private:
  std::vector<LinearModel> models_;
  std::vector<SgdTrainer> trainers_;
};

}  // namespace hazy::ml

#endif  // HAZY_ML_MULTICLASS_H_
