#include "ml/batch_solver.h"

#include <cmath>
#include <numeric>

namespace hazy::ml {

double Objective(const LinearModel& model, const std::vector<LabeledExample>& train,
                 LossKind loss, double lambda) {
  double reg = 0.0;
  for (double wi : model.w) reg += wi * wi;
  reg *= 0.5 * lambda;
  double empirical = 0.0;
  for (const auto& ex : train) {
    empirical += LossValue(loss, model.Eps(ex.features), ex.label);
  }
  if (!train.empty()) empirical /= static_cast<double>(train.size());
  return reg + empirical;
}

BatchResult BatchSolver::Train(const std::vector<LabeledExample>& train) const {
  BatchResult result;
  if (train.empty()) return result;

  SgdOptions sgd_opts;
  sgd_opts.loss = options_.loss;
  sgd_opts.lambda = options_.lambda;
  sgd_opts.eta0 = options_.eta0;
  SgdTrainer trainer(sgd_opts);

  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options_.seed);

  double prev_obj = std::numeric_limits<double>::infinity();
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      trainer.Step(&result.model, train[i].features, train[i].label);
    }
    ++result.epochs;
    double obj = Objective(result.model, train, options_.loss, options_.lambda);
    if (epoch + 1 >= options_.min_epochs && std::isfinite(prev_obj)) {
      double rel = std::fabs(prev_obj - obj) / std::max(1e-12, std::fabs(prev_obj));
      if (rel < options_.tolerance) {
        result.objective = obj;
        return result;
      }
    }
    prev_obj = obj;
    result.objective = obj;
  }
  return result;
}

}  // namespace hazy::ml
