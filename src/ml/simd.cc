#include "ml/simd.h"

#include <cmath>
#include <cstring>

// This translation unit is compiled WITHOUT AVX2 flags: it holds the
// canonical scalar kernels and the runtime dispatch. The AVX2/FMA bodies
// live in ml/simd_avx2.cc (the only TU built with -mavx2 -mfma), selected
// here per call via a cached cpuid check — so one binary runs correctly on
// pre-AVX2 hardware and fast on everything else, with bit-identical
// results either way.

namespace hazy::ml::simd {

namespace {

inline double LoadF64(const double* p) {
  double v;
  std::memcpy(&v, p, sizeof(double));
  return v;
}

inline uint32_t LoadU32(const uint32_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(uint32_t));
  return v;
}

#ifdef HAZY_HAVE_AVX2
bool DetectAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

inline bool UseAvx2() {
  static const bool have = DetectAvx2();
  return have;
}
#endif

// Pulls a view's whole payload toward the cache; shared by the scalar
// strip loop (see the AVX2 twin in simd_avx2.cc).
inline void PrefetchView(const FeatureVectorView& v) {
  const char* p = reinterpret_cast<const char*>(v.values_ptr());
  size_t bytes = static_cast<size_t>(v.size()) * sizeof(double);
  if (bytes > 512) bytes = 512;
  for (size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off);
}

}  // namespace

namespace detail {

double DotSparseGuarded(const uint32_t* idx, const double* val, size_t nnz,
                        const double* w, size_t wn) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= nnz; i += 4) {
    uint32_t j0 = LoadU32(idx + i), j1 = LoadU32(idx + i + 1);
    uint32_t j2 = LoadU32(idx + i + 2), j3 = LoadU32(idx + i + 3);
    if (j0 < wn) acc0 = std::fma(LoadF64(val + i), w[j0], acc0);
    if (j1 < wn) acc1 = std::fma(LoadF64(val + i + 1), w[j1], acc1);
    if (j2 < wn) acc2 = std::fma(LoadF64(val + i + 2), w[j2], acc2);
    if (j3 < wn) acc3 = std::fma(LoadF64(val + i + 3), w[j3], acc3);
  }
  double acc = (acc0 + acc2) + (acc1 + acc3);
  for (; i < nnz; ++i) {
    uint32_t j = LoadU32(idx + i);
    if (j < wn) acc = std::fma(LoadF64(val + i), w[j], acc);
  }
  return acc;
}

}  // namespace detail

const char* KernelName() {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return "avx2-fma";
#endif
  return "scalar";
}

double DotDenseScalar(const double* x, const double* w, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = std::fma(LoadF64(x + i), w[i], acc0);
    acc1 = std::fma(LoadF64(x + i + 1), w[i + 1], acc1);
    acc2 = std::fma(LoadF64(x + i + 2), w[i + 2], acc2);
    acc3 = std::fma(LoadF64(x + i + 3), w[i + 3], acc3);
  }
  double acc = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) acc = std::fma(LoadF64(x + i), w[i], acc);
  return acc;
}

double DotSparseScalar(const uint32_t* idx, const double* val, size_t nnz,
                       const double* w, size_t wn) {
  if (nnz == 0) return 0.0;
  if (LoadU32(idx + nnz - 1) >= wn) {
    return detail::DotSparseGuarded(idx, val, nnz, w, wn);
  }
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= nnz; i += 4) {
    acc0 = std::fma(LoadF64(val + i), w[LoadU32(idx + i)], acc0);
    acc1 = std::fma(LoadF64(val + i + 1), w[LoadU32(idx + i + 1)], acc1);
    acc2 = std::fma(LoadF64(val + i + 2), w[LoadU32(idx + i + 2)], acc2);
    acc3 = std::fma(LoadF64(val + i + 3), w[LoadU32(idx + i + 3)], acc3);
  }
  double acc = (acc0 + acc2) + (acc1 + acc3);
  for (; i < nnz; ++i) acc = std::fma(LoadF64(val + i), w[LoadU32(idx + i)], acc);
  return acc;
}

double DotDense(const double* x, const double* w, size_t n) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::DotDense(x, w, n);
#endif
  return DotDenseScalar(x, w, n);
}

double DotSparse(const uint32_t* idx, const double* val, size_t nnz,
                 const double* w, size_t wn) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::DotSparse(idx, val, nnz, w, wn);
#endif
  return DotSparseScalar(idx, val, nnz, w, wn);
}

void AxpyDense(double scale, const double* x, double* w, size_t n) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::AxpyDense(scale, x, w, n);
#endif
  for (size_t i = 0; i < n; ++i) w[i] = std::fma(scale, LoadF64(x + i), w[i]);
}

void AxpySparse(double scale, const uint32_t* idx, const double* val,
                size_t nnz, double* w) {
  for (size_t i = 0; i < nnz; ++i) {
    uint32_t j = LoadU32(idx + i);
    w[j] = std::fma(scale, LoadF64(val + i), w[j]);
  }
}

void Scale(double* w, size_t n, double s) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::Scale(w, n, s);
#endif
  for (size_t i = 0; i < n; ++i) w[i] *= s;
}

double SquaredDistance(const double* x, const double* y, size_t n) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::SquaredDistance(x, y, n);
#endif
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double d0 = LoadF64(x + i) - LoadF64(y + i);
    double d1 = LoadF64(x + i + 1) - LoadF64(y + i + 1);
    double d2 = LoadF64(x + i + 2) - LoadF64(y + i + 2);
    double d3 = LoadF64(x + i + 3) - LoadF64(y + i + 3);
    acc0 = std::fma(d0, d0, acc0);
    acc1 = std::fma(d1, d1, acc1);
    acc2 = std::fma(d2, d2, acc2);
    acc3 = std::fma(d3, d3, acc3);
  }
  double acc = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) {
    double d = LoadF64(x + i) - LoadF64(y + i);
    acc = std::fma(d, d, acc);
  }
  return acc;
}

double L1Distance(const double* x, const double* y, size_t n) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::L1Distance(x, y, n);
#endif
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += std::fabs(LoadF64(x + i) - LoadF64(y + i));
    acc1 += std::fabs(LoadF64(x + i + 1) - LoadF64(y + i + 1));
    acc2 += std::fabs(LoadF64(x + i + 2) - LoadF64(y + i + 2));
    acc3 += std::fabs(LoadF64(x + i + 3) - LoadF64(y + i + 3));
  }
  double acc = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) acc += std::fabs(LoadF64(x + i) - LoadF64(y + i));
  return acc;
}

void ScoreStrip(const FeatureVectorView* views, size_t n, const double* w,
                size_t wn, double b, double* eps_out) {
#ifdef HAZY_HAVE_AVX2
  if (UseAvx2()) return avx2::ScoreStrip(views, n, w, wn, b, eps_out);
#endif
  if (n > 0) PrefetchView(views[0]);
  for (size_t i = 0; i < n; ++i) {
    const FeatureVectorView& v = views[i];
    if (i + 1 < n) PrefetchView(views[i + 1]);
    double dot = v.is_dense()
                     ? DotDenseScalar(v.values_ptr(), w, v.size() < wn ? v.size() : wn)
                     : DotSparseScalar(v.indices_ptr(), v.values_ptr(), v.size(), w, wn);
    eps_out[i] = dot - b;
  }
}

}  // namespace hazy::ml::simd
