#include "ml/vector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ml/simd.h"
#include "storage/coding.h"

namespace hazy::ml {

using storage::GetFixed32;
using storage::PutDouble;
using storage::PutFixed32;

double HolderConjugate(double p) {
  HAZY_CHECK(p >= 1.0) << "Hölder exponent must be >= 1";
  if (p == 1.0) return kInf;
  if (std::isinf(p)) return 1.0;
  return p / (p - 1.0);
}

FeatureVector FeatureVector::Dense(std::vector<double> values) {
  FeatureVector v;
  v.dense_ = true;
  v.dim_ = static_cast<uint32_t>(values.size());
  v.values_ = std::move(values);
  return v;
}

FeatureVector FeatureVector::Sparse(std::vector<uint32_t> indices,
                                    std::vector<double> values, uint32_t dim) {
  HAZY_CHECK(indices.size() == values.size()) << "index/value size mismatch";
  for (size_t i = 1; i < indices.size(); ++i) {
    HAZY_CHECK(indices[i - 1] < indices[i]) << "sparse indices must be strictly increasing";
  }
  HAZY_CHECK(indices.empty() || indices.back() < dim) << "index out of dimension";
  FeatureVector v;
  v.dense_ = false;
  v.dim_ = dim;
  v.indices_ = std::move(indices);
  v.values_ = std::move(values);
  return v;
}

size_t FeatureVector::nnz() const {
  if (!dense_) return values_.size();
  size_t n = 0;
  for (double x : values_) {
    if (x != 0.0) ++n;
  }
  return n;
}

double FeatureVector::Dot(const std::vector<double>& w) const {
  if (dense_) {
    return simd::DotDense(values_.data(), w.data(), std::min(values_.size(), w.size()));
  }
  return simd::DotSparse(indices_.data(), values_.data(), indices_.size(), w.data(),
                         w.size());
}

void FeatureVector::AddTo(std::vector<double>* w, double scale) const {
  if (w->size() < dim_) w->resize(dim_, 0.0);
  if (dense_) {
    simd::AxpyDense(scale, values_.data(), w->data(), values_.size());
  } else {
    simd::AxpySparse(scale, indices_.data(), values_.data(), indices_.size(),
                     w->data());
  }
}

double FeatureVector::Norm(double p) const {
  if (std::isinf(p)) {
    double m = 0.0;
    for (double x : values_) m = std::max(m, std::fabs(x));
    return m;
  }
  if (p == 1.0) {
    double s = 0.0;
    for (double x : values_) s += std::fabs(x);
    return s;
  }
  if (p == 2.0) {
    double s = 0.0;
    for (double x : values_) s += x * x;
    return std::sqrt(s);
  }
  double s = 0.0;
  for (double x : values_) s += std::pow(std::fabs(x), p);
  return std::pow(s, 1.0 / p);
}

double FeatureVector::At(uint32_t i) const {
  if (dense_) {
    return i < values_.size() ? values_[i] : 0.0;
  }
  auto it = std::lower_bound(indices_.begin(), indices_.end(), i);
  if (it == indices_.end() || *it != i) return 0.0;
  return values_[static_cast<size_t>(it - indices_.begin())];
}

size_t FeatureVector::ApproxBytes() const {
  size_t b = sizeof(FeatureVector) + values_.size() * sizeof(double);
  if (!dense_) b += indices_.size() * sizeof(uint32_t);
  return b;
}

void FeatureVector::EncodeTo(std::string* out) const {
  out->push_back(dense_ ? 1 : 0);
  PutFixed32(out, dim_);
  if (dense_) {
    out->append(reinterpret_cast<const char*>(values_.data()),
                values_.size() * sizeof(double));
    return;
  }
  // Parallel arrays (all indices, then all values) so on-disk payloads can
  // be scored through FeatureVectorView without materializing.
  PutFixed32(out, static_cast<uint32_t>(indices_.size()));
  out->append(reinterpret_cast<const char*>(indices_.data()),
              indices_.size() * sizeof(uint32_t));
  out->append(reinterpret_cast<const char*>(values_.data()),
              values_.size() * sizeof(double));
}

bool FeatureVectorView::TryParse(std::string_view* src, FeatureVectorView* out) {
  if (src->empty()) return false;
  out->dense_ = (*src)[0] != 0;
  src->remove_prefix(1);
  if (!GetFixed32(src, &out->dim_)) return false;
  if (out->dense_) {
    out->nnz_ = out->dim_;
    size_t bytes = static_cast<size_t>(out->dim_) * sizeof(double);
    if (src->size() < bytes) return false;
    out->values_ = src->data();
    src->remove_prefix(bytes);
    return true;
  }
  if (!GetFixed32(src, &out->nnz_)) return false;
  size_t idx_bytes = static_cast<size_t>(out->nnz_) * sizeof(uint32_t);
  size_t val_bytes = static_cast<size_t>(out->nnz_) * sizeof(double);
  if (src->size() < idx_bytes + val_bytes) return false;
  out->indices_ = src->data();
  out->values_ = src->data() + idx_bytes;
  // The sparse kernels bound-check only the LAST index (sortedness makes
  // that cover the rest), so a view over untrusted bytes must verify the
  // strictly-increasing invariant here or a corrupt tuple could gather far
  // outside the weight vector. One sequential pass over indices the dot is
  // about to read anyway.
  uint32_t prev = 0;
  for (uint32_t i = 0; i < out->nnz_; ++i) {
    uint32_t idx = out->index(i);
    if (idx >= out->dim_ || (i > 0 && idx <= prev)) return false;
    prev = idx;
  }
  src->remove_prefix(idx_bytes + val_bytes);
  return true;
}

StatusOr<FeatureVectorView> FeatureVectorView::Parse(std::string_view* src) {
  FeatureVectorView v;
  if (!TryParse(src, &v)) return Status::Corruption("feature vector truncated");
  return v;
}

FeatureVector FeatureVectorView::Materialize() const {
  if (dense_) {
    std::vector<double> values(nnz_);
    if (nnz_ > 0) std::memcpy(values.data(), values_, nnz_ * sizeof(double));
    return FeatureVector::Dense(std::move(values));
  }
  std::vector<uint32_t> indices(nnz_);
  std::vector<double> values(nnz_);
  if (nnz_ > 0) {
    std::memcpy(indices.data(), indices_, nnz_ * sizeof(uint32_t));
    std::memcpy(values.data(), values_, nnz_ * sizeof(double));
  }
  return FeatureVector::Sparse(std::move(indices), std::move(values), dim_);
}

double FeatureVectorView::Dot(const double* w, size_t wn) const {
  if (dense_) {
    return simd::DotDense(values_ptr(), w, nnz_ < wn ? nnz_ : wn);
  }
  return simd::DotSparse(indices_ptr(), values_ptr(), nnz_, w, wn);
}

StatusOr<FeatureVector> FeatureVector::DecodeFrom(std::string_view* src) {
  HAZY_ASSIGN_OR_RETURN(FeatureVectorView view, FeatureVectorView::Parse(src));
  return view.Materialize();
}

bool FeatureVector::operator==(const FeatureVector& o) const {
  return dense_ == o.dense_ && dim_ == o.dim_ && values_ == o.values_ &&
         indices_ == o.indices_;
}

}  // namespace hazy::ml
