#include "ml/vector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "storage/coding.h"

namespace hazy::ml {

using storage::GetDouble;
using storage::GetFixed32;
using storage::PutDouble;
using storage::PutFixed32;

double HolderConjugate(double p) {
  HAZY_CHECK(p >= 1.0) << "Hölder exponent must be >= 1";
  if (p == 1.0) return kInf;
  if (std::isinf(p)) return 1.0;
  return p / (p - 1.0);
}

FeatureVector FeatureVector::Dense(std::vector<double> values) {
  FeatureVector v;
  v.dense_ = true;
  v.dim_ = static_cast<uint32_t>(values.size());
  v.values_ = std::move(values);
  return v;
}

FeatureVector FeatureVector::Sparse(std::vector<uint32_t> indices,
                                    std::vector<double> values, uint32_t dim) {
  HAZY_CHECK(indices.size() == values.size()) << "index/value size mismatch";
  for (size_t i = 1; i < indices.size(); ++i) {
    HAZY_CHECK(indices[i - 1] < indices[i]) << "sparse indices must be strictly increasing";
  }
  HAZY_CHECK(indices.empty() || indices.back() < dim) << "index out of dimension";
  FeatureVector v;
  v.dense_ = false;
  v.dim_ = dim;
  v.indices_ = std::move(indices);
  v.values_ = std::move(values);
  return v;
}

size_t FeatureVector::nnz() const {
  if (!dense_) return values_.size();
  size_t n = 0;
  for (double x : values_) {
    if (x != 0.0) ++n;
  }
  return n;
}

double FeatureVector::Dot(const std::vector<double>& w) const {
  double acc = 0.0;
  if (dense_) {
    size_t n = std::min(values_.size(), w.size());
    for (size_t i = 0; i < n; ++i) acc += values_[i] * w[i];
  } else {
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (indices_[i] < w.size()) acc += values_[i] * w[indices_[i]];
    }
  }
  return acc;
}

void FeatureVector::AddTo(std::vector<double>* w, double scale) const {
  if (w->size() < dim_) w->resize(dim_, 0.0);
  if (dense_) {
    for (size_t i = 0; i < values_.size(); ++i) (*w)[i] += scale * values_[i];
  } else {
    for (size_t i = 0; i < indices_.size(); ++i) {
      (*w)[indices_[i]] += scale * values_[i];
    }
  }
}

double FeatureVector::Norm(double p) const {
  if (std::isinf(p)) {
    double m = 0.0;
    for (double x : values_) m = std::max(m, std::fabs(x));
    return m;
  }
  if (p == 1.0) {
    double s = 0.0;
    for (double x : values_) s += std::fabs(x);
    return s;
  }
  if (p == 2.0) {
    double s = 0.0;
    for (double x : values_) s += x * x;
    return std::sqrt(s);
  }
  double s = 0.0;
  for (double x : values_) s += std::pow(std::fabs(x), p);
  return std::pow(s, 1.0 / p);
}

void FeatureVector::ForEach(const std::function<void(uint32_t, double)>& fn) const {
  if (dense_) {
    for (uint32_t i = 0; i < values_.size(); ++i) fn(i, values_[i]);
  } else {
    for (size_t i = 0; i < indices_.size(); ++i) fn(indices_[i], values_[i]);
  }
}

double FeatureVector::At(uint32_t i) const {
  if (dense_) {
    return i < values_.size() ? values_[i] : 0.0;
  }
  auto it = std::lower_bound(indices_.begin(), indices_.end(), i);
  if (it == indices_.end() || *it != i) return 0.0;
  return values_[static_cast<size_t>(it - indices_.begin())];
}

size_t FeatureVector::ApproxBytes() const {
  size_t b = sizeof(FeatureVector) + values_.size() * sizeof(double);
  if (!dense_) b += indices_.size() * sizeof(uint32_t);
  return b;
}

void FeatureVector::EncodeTo(std::string* out) const {
  out->push_back(dense_ ? 1 : 0);
  PutFixed32(out, dim_);
  if (dense_) {
    for (double v : values_) PutDouble(out, v);
  } else {
    PutFixed32(out, static_cast<uint32_t>(indices_.size()));
    for (size_t i = 0; i < indices_.size(); ++i) {
      PutFixed32(out, indices_[i]);
      PutDouble(out, values_[i]);
    }
  }
}

StatusOr<FeatureVector> FeatureVector::DecodeFrom(std::string_view* src) {
  if (src->empty()) return Status::Corruption("feature vector truncated");
  bool dense = (*src)[0] != 0;
  src->remove_prefix(1);
  uint32_t dim;
  if (!GetFixed32(src, &dim)) return Status::Corruption("feature vector truncated (dim)");
  if (dense) {
    std::vector<double> values(dim);
    for (uint32_t i = 0; i < dim; ++i) {
      if (!GetDouble(src, &values[i])) {
        return Status::Corruption("feature vector truncated (dense values)");
      }
    }
    return Dense(std::move(values));
  }
  uint32_t nnz;
  if (!GetFixed32(src, &nnz)) return Status::Corruption("feature vector truncated (nnz)");
  std::vector<uint32_t> indices(nnz);
  std::vector<double> values(nnz);
  for (uint32_t i = 0; i < nnz; ++i) {
    if (!GetFixed32(src, &indices[i]) || !GetDouble(src, &values[i])) {
      return Status::Corruption("feature vector truncated (sparse entries)");
    }
  }
  return Sparse(std::move(indices), std::move(values), dim);
}

bool FeatureVector::operator==(const FeatureVector& o) const {
  return dense_ == o.dense_ && dim_ == o.dim_ && values_ == o.values_ &&
         indices_ == o.indices_;
}

}  // namespace hazy::ml
