#include "ml/model_selection.h"

#include <numeric>

#include "common/random.h"
#include "ml/metrics.h"
#include "ml/sgd.h"

namespace hazy::ml {

SelectionResult SelectModel(const std::vector<LabeledExample>& examples,
                            double holdout_fraction, uint64_t seed) {
  SelectionResult result;
  if (examples.size() < 4) return result;

  std::vector<size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);

  size_t holdout_n = std::max<size_t>(
      1, static_cast<size_t>(holdout_fraction * static_cast<double>(examples.size())));
  std::vector<LabeledExample> holdout, train;
  for (size_t i = 0; i < order.size(); ++i) {
    (i < holdout_n ? holdout : train).push_back(examples[order[i]]);
  }

  const LossKind kinds[] = {LossKind::kHinge, LossKind::kLogistic, LossKind::kSquared};
  result.accuracies.resize(3, 0.0);
  for (LossKind kind : kinds) {
    SgdOptions opts;
    opts.loss = kind;
    SgdTrainer trainer(opts);
    LinearModel model;
    // Two passes over the training split (cheap; selection only needs rank
    // order of methods, not fully converged models).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& ex : train) trainer.AddExample(&model, ex);
    }
    double acc = Evaluate(model, holdout).Accuracy();
    result.accuracies[static_cast<size_t>(kind)] = acc;
    if (acc > result.best_accuracy) {
      result.best_accuracy = acc;
      result.best = kind;
    }
  }
  return result;
}

}  // namespace hazy::ml
