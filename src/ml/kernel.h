// Shift-invariant kernels (paper B.5.2/B.5.3). Hazy handles non-linear
// classification either through explicit kernel expansions or — the route
// the paper's experiments take — by *linearizing* shift-invariant kernels
// with random Fourier features (see rff.h), after which everything reduces
// to the linear machinery.

#ifndef HAZY_ML_KERNEL_H_
#define HAZY_ML_KERNEL_H_

#include "ml/vector.h"

namespace hazy::ml {

/// Supported shift-invariant kernels.
enum class KernelKind {
  kRbf,        ///< exp(-gamma * ||x - y||_2^2)
  kLaplacian,  ///< exp(-gamma * ||x - y||_1)
};

/// Evaluates K(x, y) for the given kernel.
double KernelValue(KernelKind kind, double gamma, const FeatureVector& x,
                   const FeatureVector& y);

}  // namespace hazy::ml

#endif  // HAZY_ML_KERNEL_H_
