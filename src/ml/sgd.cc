#include "ml/sgd.h"

#include "ml/simd.h"

namespace hazy::ml {

void SgdTrainer::Step(LinearModel* model, const FeatureVector& x, int y) {
  double eta =
      options_.eta0 / (1.0 + options_.lambda * options_.eta0 * static_cast<double>(t_));
  ++t_;
  if (options_.loss == LossKind::kSquared) {
    // Normalized LMS: the squared-loss gradient scales with |z|, so a raw
    // step diverges once eta exceeds ~2/||x||^2. Normalizing by the feature
    // energy keeps any eta0 < 2 stable (hinge/logistic have bounded
    // gradients and need no normalization).
    double n2 = x.Norm(2.0);
    eta /= 1.0 + n2 * n2;
  }

  if (model->w.size() < x.dim()) model->w.resize(x.dim(), 0.0);

  const double z = x.Dot(model->w) - model->b;
  const double g = LossGradient(options_.loss, z, y);

  // Regularization shrink: w <- (1 - eta * lambda) * w. The bias is not
  // regularized (standard practice; matches the SVM formulation in A.1).
  const double shrink = 1.0 - eta * options_.lambda;
  if (shrink != 1.0) {
    simd::Scale(model->w.data(), model->w.size(), shrink);
  }
  if (g != 0.0) {
    // z = w·x − b, so dL/dw = g·x and dL/db = −g.
    x.AddTo(&model->w, -eta * g);
    if (options_.train_bias) model->b += eta * g * options_.bias_multiplier;
  }
}

void SgdTrainer::AddExample(LinearModel* model, const LabeledExample& ex) {
  for (int i = 0; i < options_.steps_per_example; ++i) {
    Step(model, ex.features, ex.label);
  }
}

}  // namespace hazy::ml
