// Kernel expansion classifier (paper B.5.2):
//   c(x) = sum_i c_i K(s_i, x)
// with support vectors s_i and real weights c_i. Trained online with a
// NORMA-style kernelized SGD: a margin violation appends the example as a
// new support vector, and ℓ2 regularization shrinks all weights each step.
//
// The property Hazy's incremental maintenance needs (B.5.2): for the
// kernels we support, K(s, x) ∈ (0, 1], so when the coefficient vector
// moves by δ the decision value moves by at most ‖δ‖₁ — the same role the
// Hölder bound plays for linear models.

#ifndef HAZY_ML_KERNEL_MODEL_H_
#define HAZY_ML_KERNEL_MODEL_H_

#include <cstdint>
#include <vector>

#include "ml/kernel.h"
#include "ml/model.h"
#include "ml/vector.h"

namespace hazy::ml {

/// \brief Support-vector expansion model.
struct KernelModel {
  KernelKind kind = KernelKind::kRbf;
  double gamma = 1.0;
  std::vector<FeatureVector> support;
  std::vector<double> coeffs;

  /// Decision value c(x).
  double Eps(const FeatureVector& x) const;

  /// Label in {-1, +1}.
  int Classify(const FeatureVector& x) const { return SignOf(Eps(x)); }

  /// ℓ1 mass of the coefficient vector.
  double CoeffL1() const;

  size_t num_support() const { return support.size(); }
};

/// \brief Configuration for KernelSgdTrainer.
struct KernelSgdOptions {
  KernelKind kind = KernelKind::kRbf;
  double gamma = 1.0;
  double lambda = 1e-3;
  double eta0 = 0.5;
};

/// \brief Online kernel trainer (kernelized hinge SGD / NORMA).
///
/// Each Step reports an upper bound on the ℓ1 movement of the coefficient
/// vector, which the kernel classification view folds into its water lines.
class KernelSgdTrainer {
 public:
  explicit KernelSgdTrainer(KernelSgdOptions options = {}) : options_(options) {}

  /// Folds (x, y) into the model; returns an upper bound on
  /// ‖coeffs_after − coeffs_before‖₁ (new support vectors count fully).
  double Step(KernelModel* model, const FeatureVector& x, int y);

  uint64_t steps() const { return t_; }
  const KernelSgdOptions& options() const { return options_; }

 private:
  KernelSgdOptions options_;
  uint64_t t_ = 0;
};

}  // namespace hazy::ml

#endif  // HAZY_ML_KERNEL_MODEL_H_
