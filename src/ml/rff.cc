#include "ml/rff.h"

#include <cmath>

#include "persist/serde.h"

namespace hazy::ml {

namespace {
constexpr uint32_t kRffTag = hazy::persist::MakeTag('R', 'F', 'F', '1');
}  // namespace

void RandomFourierFeatures::SaveState(persist::StateWriter* w) const {
  w->PutTag(kRffTag);
  w->PutU32(input_dim_);
  w->PutU32(output_dim_);
  for (const auto& dir : directions_) w->PutDoubleVec(dir);
  w->PutDoubleVec(phases_);
}

Status RandomFourierFeatures::LoadState(persist::StateReader* r) {
  HAZY_RETURN_NOT_OK(r->ExpectTag(kRffTag));
  HAZY_RETURN_NOT_OK(r->GetU32(&input_dim_));
  HAZY_RETURN_NOT_OK(r->GetU32(&output_dim_));
  // Each direction row is a length-prefixed double vector of input_dim.
  HAZY_RETURN_NOT_OK(r->CheckCount(output_dim_, sizeof(uint64_t)));
  HAZY_RETURN_NOT_OK(r->CheckCount(input_dim_, sizeof(double)));
  directions_.assign(output_dim_, {});
  for (auto& dir : directions_) HAZY_RETURN_NOT_OK(r->GetDoubleVec(&dir));
  return r->GetDoubleVec(&phases_);
}

RandomFourierFeatures::RandomFourierFeatures(uint32_t input_dim, uint32_t output_dim,
                                             KernelKind kind, double gamma,
                                             uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim) {
  Rng rng(seed);
  directions_.resize(output_dim_);
  phases_.resize(output_dim_);
  for (uint32_t i = 0; i < output_dim_; ++i) {
    auto& dir = directions_[i];
    dir.resize(input_dim_);
    for (uint32_t j = 0; j < input_dim_; ++j) {
      switch (kind) {
        case KernelKind::kRbf:
          // Spectral density of exp(-gamma ||delta||^2) is N(0, 2*gamma I).
          dir[j] = rng.Gaussian(0.0, std::sqrt(2.0 * gamma));
          break;
        case KernelKind::kLaplacian: {
          // Spectral density of exp(-gamma ||delta||_1) is a product of
          // Cauchy(gamma) marginals.
          double u = rng.UniformDouble(-0.499999, 0.499999);
          dir[j] = gamma * std::tan(M_PI * u);
          break;
        }
      }
    }
    phases_[i] = rng.UniformDouble(0.0, 2.0 * M_PI);
  }
}

FeatureVector RandomFourierFeatures::Transform(const FeatureVector& x) const {
  std::vector<double> z(output_dim_);
  const double scale = std::sqrt(2.0 / static_cast<double>(output_dim_));
  for (uint32_t i = 0; i < output_dim_; ++i) {
    double dot = x.Dot(directions_[i]);
    z[i] = scale * std::cos(dot + phases_[i]);
  }
  return FeatureVector::Dense(std::move(z));
}

}  // namespace hazy::ml
