#include "ml/rff.h"

#include <cmath>

namespace hazy::ml {

RandomFourierFeatures::RandomFourierFeatures(uint32_t input_dim, uint32_t output_dim,
                                             KernelKind kind, double gamma,
                                             uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim) {
  Rng rng(seed);
  directions_.resize(output_dim_);
  phases_.resize(output_dim_);
  for (uint32_t i = 0; i < output_dim_; ++i) {
    auto& dir = directions_[i];
    dir.resize(input_dim_);
    for (uint32_t j = 0; j < input_dim_; ++j) {
      switch (kind) {
        case KernelKind::kRbf:
          // Spectral density of exp(-gamma ||delta||^2) is N(0, 2*gamma I).
          dir[j] = rng.Gaussian(0.0, std::sqrt(2.0 * gamma));
          break;
        case KernelKind::kLaplacian: {
          // Spectral density of exp(-gamma ||delta||_1) is a product of
          // Cauchy(gamma) marginals.
          double u = rng.UniformDouble(-0.499999, 0.499999);
          dir[j] = gamma * std::tan(M_PI * u);
          break;
        }
      }
    }
    phases_[i] = rng.UniformDouble(0.0, 2.0 * M_PI);
  }
}

FeatureVector RandomFourierFeatures::Transform(const FeatureVector& x) const {
  std::vector<double> z(output_dim_);
  const double scale = std::sqrt(2.0 / static_cast<double>(output_dim_));
  for (uint32_t i = 0; i < output_dim_; ++i) {
    double dot = x.Dot(directions_[i]);
    z[i] = scale * std::cos(dot + phases_[i]);
  }
  return FeatureVector::Dense(std::move(z));
}

}  // namespace hazy::ml
