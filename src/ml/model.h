// Linear model (w, b): the object Hazy maintains per classification view.
// Section 2.1: V = {(id, c) | (id, f) ∈ In, c = sign(w·f − b)} where
// sign(x) = 1 if x >= 0 and -1 otherwise.

#ifndef HAZY_ML_MODEL_H_
#define HAZY_ML_MODEL_H_

#include <cmath>
#include <vector>

#include "ml/vector.h"

namespace hazy::ml {

/// The paper's sign convention: sign(0) == +1.
inline int SignOf(double x) { return x >= 0.0 ? 1 : -1; }

/// \brief A linear model (w, b). eps(f) = w·f − b; label = sign(eps).
struct LinearModel {
  std::vector<double> w;
  double b = 0.0;

  /// Distance-to-hyperplane surrogate the paper calls eps.
  double Eps(const FeatureVector& f) const { return f.Dot(w) - b; }

  /// Classifies a feature vector into {-1, +1}.
  int Classify(const FeatureVector& f) const { return SignOf(Eps(f)); }

  /// ℓp norm of the *difference* of two weight vectors, ‖w_a − w_b‖_p.
  /// This is the ‖δw‖_p term in Lemma 3.1's Hölder bound.
  static double DeltaNorm(const LinearModel& a, const LinearModel& b, double p);

  /// Resets to the zero model in d dimensions.
  void Reset(size_t d) {
    w.assign(d, 0.0);
    b = 0.0;
  }
};

inline double LinearModel::DeltaNorm(const LinearModel& a, const LinearModel& b,
                                     double p) {
  size_t n = std::max(a.w.size(), b.w.size());
  auto at = [](const std::vector<double>& v, size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  if (std::isinf(p)) {
    double m = 0.0;
    for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(at(a.w, i) - at(b.w, i)));
    return m;
  }
  if (p == 1.0) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += std::fabs(at(a.w, i) - at(b.w, i));
    return s;
  }
  if (p == 2.0) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = at(a.w, i) - at(b.w, i);
      s += d * d;
    }
    return std::sqrt(s);
  }
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += std::pow(std::fabs(at(a.w, i) - at(b.w, i)), p);
  return std::pow(s, 1.0 / p);
}

}  // namespace hazy::ml

#endif  // HAZY_ML_MODEL_H_
