// Binary classification quality metrics: the P/R columns of the paper's
// Figure 10 learning-quality comparison.

#ifndef HAZY_ML_METRICS_H_
#define HAZY_ML_METRICS_H_

#include <cstdint>
#include <vector>

#include "ml/model.h"
#include "ml/vector.h"

namespace hazy::ml {

/// \brief Confusion-matrix counts and derived rates for the positive class.
struct BinaryMetrics {
  uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  double Precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const {
    uint64_t total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(total);
  }
};

/// Scores `model` on labeled examples.
BinaryMetrics Evaluate(const LinearModel& model,
                       const std::vector<LabeledExample>& examples);

}  // namespace hazy::ml

#endif  // HAZY_ML_METRICS_H_
