// Vectorized scoring kernels for the read path. Every dot product in the
// system — FeatureVector::Dot, the zero-copy FeatureVectorView scans, the
// SGD axpy, the RFF projections — funnels through these so that all five
// architectures compute bit-identical eps values no matter which build
// variant is running.
//
// Bit-compatibility contract: each kernel defines a *canonical* summation
// order — four fused-multiply-add accumulator stripes (lane j sums elements
// i ≡ j mod 4) reduced as (a0 + a2) + (a1 + a3), then an fma tail — and both
// the scalar reference (`*Scalar`, always compiled) and the AVX2/FMA
// implementation realize exactly that order. A 256-bit fmadd over doubles is
// the same four fma stripes in one register, so the two paths agree to the
// last ulp; tests/ml_simd_test.cc asserts it.
//
// Dispatch is at RUNTIME: when the build compiled the AVX2 TU
// (ml/simd_avx2.cc, the only file built with -mavx2 -mfma), each kernel
// checks cpuid once and routes accordingly — a binary built on an AVX2
// machine still runs (scalar) on hardware without it. -DHAZY_SIMD=OFF or
// the HAZY_SCALAR_ONLY legacy-comparison build drop the AVX2 TU entirely.
// Either way results are bit-identical, so water-line and Skiing decisions
// never drift across builds or machines.
//
// All kernels tolerate unaligned inputs: tuple bytes come straight out of
// slotted pages at arbitrary offsets, so loads go through memcpy (scalar)
// or unaligned-load intrinsics (AVX2), never through a typed dereference.

#ifndef HAZY_ML_SIMD_H_
#define HAZY_ML_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/vector.h"

namespace hazy::ml::simd {

/// Name of the kernel set the build dispatches to ("avx2-fma" or "scalar").
/// Benchmarks report it so BENCH_*.json rows identify the code path.
const char* KernelName();

// ---------------------------------------------------------------------------
// Scalar reference kernels (canonical summation order, always compiled).
// ---------------------------------------------------------------------------

/// Dense dot over n unaligned doubles: sum x[i] * w[i].
double DotDenseScalar(const double* x, const double* w, size_t n);

/// Sparse gather-dot: sum val[i] * w[idx[i]], treating w[j] = 0 for
/// j >= wn. `idx` must be strictly increasing (so one bounds check on the
/// last index covers the whole vector).
double DotSparseScalar(const uint32_t* idx, const double* val, size_t nnz,
                       const double* w, size_t wn);

// ---------------------------------------------------------------------------
// Dispatched kernels (AVX2/FMA when the build enables it, else the scalar
// reference; bit-identical either way).
// ---------------------------------------------------------------------------

double DotDense(const double* x, const double* w, size_t n);
double DotSparse(const uint32_t* idx, const double* val, size_t nnz,
                 const double* w, size_t wn);

/// w[i] = fma(scale, x[i], w[i]) for i in [0, n). Element-wise, so SIMD and
/// scalar are trivially bit-identical (both use fused multiply-add).
void AxpyDense(double scale, const double* x, double* w, size_t n);

/// w[idx[i]] = fma(scale, val[i], w[idx[i]]). Scatter stays scalar (AVX2
/// has no scatter) but uses fma for cross-path identity.
void AxpySparse(double scale, const uint32_t* idx, const double* val,
                size_t nnz, double* w);

/// w[i] *= s for i in [0, n) — the SGD regularization shrink.
void Scale(double* w, size_t n, double s);

/// Sum of squared differences over two dense arrays (RBF kernel distance).
double SquaredDistance(const double* x, const double* y, size_t n);

/// Sum of |x[i] - y[i]| (Laplacian kernel distance).
double L1Distance(const double* x, const double* y, size_t n);

// ---------------------------------------------------------------------------
// Strip scoring: the blocked read-path primitive. Scores a strip of N
// feature-vector views against one weight vector per pass, writing
// eps[i] = dot(views[i], w) - b. This is what the heap-page and window
// scans call once per strip instead of once per tuple, keeping the weight
// vector hot in cache and the per-tuple dispatch cost amortized.
// ---------------------------------------------------------------------------

void ScoreStrip(const FeatureVectorView* views, size_t n, const double* w,
                size_t wn, double b, double* eps_out);

/// Convenience over a model weight vector.
inline void ScoreStrip(const FeatureVectorView* views, size_t n,
                       const std::vector<double>& w, double b, double* eps_out) {
  ScoreStrip(views, n, w.data(), w.size(), b, eps_out);
}

namespace detail {
/// Shared guarded sparse path (indices may exceed wn); one definition so
/// the scalar and AVX2 kernels cannot diverge on it.
double DotSparseGuarded(const uint32_t* idx, const double* val, size_t nnz,
                        const double* w, size_t wn);
}  // namespace detail

#ifdef HAZY_HAVE_AVX2
/// The AVX2/FMA bodies (ml/simd_avx2.cc). Call through the dispatched
/// top-level functions, not directly — these assume cpuid support.
namespace avx2 {
double DotDense(const double* x, const double* w, size_t n);
double DotSparse(const uint32_t* idx, const double* val, size_t nnz,
                 const double* w, size_t wn);
void AxpyDense(double scale, const double* x, double* w, size_t n);
void Scale(double* w, size_t n, double s);
double SquaredDistance(const double* x, const double* y, size_t n);
double L1Distance(const double* x, const double* y, size_t n);
void ScoreStrip(const FeatureVectorView* views, size_t n, const double* w,
                size_t wn, double b, double* eps_out);
}  // namespace avx2
#endif  // HAZY_HAVE_AVX2

}  // namespace hazy::ml::simd

#endif  // HAZY_ML_SIMD_H_
