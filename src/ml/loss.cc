#include "ml/loss.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace hazy::ml {

const char* LossKindToString(LossKind k) {
  switch (k) {
    case LossKind::kHinge:
      return "SVM";
    case LossKind::kLogistic:
      return "LOGISTIC";
    case LossKind::kSquared:
      return "RIDGE";
  }
  return "?";
}

StatusOr<LossKind> LossKindFromString(const std::string& name) {
  if (EqualsIgnoreCase(name, "SVM") || EqualsIgnoreCase(name, "HINGE")) {
    return LossKind::kHinge;
  }
  if (EqualsIgnoreCase(name, "LOGISTIC") || EqualsIgnoreCase(name, "LR")) {
    return LossKind::kLogistic;
  }
  if (EqualsIgnoreCase(name, "RIDGE") || EqualsIgnoreCase(name, "SQUARED") ||
      EqualsIgnoreCase(name, "LEASTSQUARES")) {
    return LossKind::kSquared;
  }
  return Status::InvalidArgument(StrFormat("unknown classification method '%s'",
                                           name.c_str()));
}

double LossValue(LossKind kind, double z, int y) {
  double yd = static_cast<double>(y);
  switch (kind) {
    case LossKind::kHinge:
      return std::max(0.0, 1.0 - yd * z);
    case LossKind::kLogistic: {
      // log(1 + exp(-yz)), computed stably.
      double m = -yd * z;
      if (m > 30.0) return m;
      return std::log1p(std::exp(m));
    }
    case LossKind::kSquared: {
      double d = z - yd;
      return 0.5 * d * d;
    }
  }
  return 0.0;
}

double LossGradient(LossKind kind, double z, int y) {
  double yd = static_cast<double>(y);
  switch (kind) {
    case LossKind::kHinge:
      return (yd * z < 1.0) ? -yd : 0.0;
    case LossKind::kLogistic: {
      // -y * sigmoid(-yz), computed stably.
      double m = yd * z;
      if (m > 30.0) return 0.0;
      if (m < -30.0) return -yd;
      return -yd / (1.0 + std::exp(m));
    }
    case LossKind::kSquared:
      return z - yd;
  }
  return 0.0;
}

}  // namespace hazy::ml
