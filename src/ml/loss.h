// Loss functions for the linear models Hazy supports (paper Figure 9):
// SVM hinge, logistic, and squared (ridge) loss, each with its subgradient
// in z = w·x − b. Adding a model means adding ~10 lines here, matching the
// paper's claim that "a new linear model requires tens of lines of code".

#ifndef HAZY_ML_LOSS_H_
#define HAZY_ML_LOSS_H_

#include <string>

#include "common/status.h"

namespace hazy::ml {

/// Which linear model a view uses (USING SVM | LOGISTIC | RIDGE).
enum class LossKind { kHinge = 0, kLogistic = 1, kSquared = 2 };

const char* LossKindToString(LossKind k);
StatusOr<LossKind> LossKindFromString(const std::string& name);

/// L(z, y) for prediction z = w·x − b and label y ∈ {-1, +1}.
double LossValue(LossKind kind, double z, int y);

/// dL/dz — the subgradient the SGD step uses.
double LossGradient(LossKind kind, double z, int y);

}  // namespace hazy::ml

#endif  // HAZY_ML_LOSS_H_
