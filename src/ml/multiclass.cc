#include "ml/multiclass.h"

#include "common/logging.h"

namespace hazy::ml {

OneVsAllClassifier::OneVsAllClassifier(int num_classes, SgdOptions options) {
  HAZY_CHECK(num_classes >= 2) << "multiclass needs at least two classes";
  models_.resize(static_cast<size_t>(num_classes));
  trainers_.reserve(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) trainers_.emplace_back(options);
}

void OneVsAllClassifier::AddExample(const MulticlassExample& ex) {
  HAZY_CHECK(ex.klass >= 0 && ex.klass < num_classes()) << "class out of range";
  for (int k = 0; k < num_classes(); ++k) {
    LabeledExample bin;
    bin.id = ex.id;
    bin.features = ex.features;
    bin.label = (k == ex.klass) ? 1 : -1;
    trainers_[static_cast<size_t>(k)].AddExample(&models_[static_cast<size_t>(k)], bin);
  }
}

int OneVsAllClassifier::Predict(const FeatureVector& x) const {
  int best = 0;
  double best_eps = models_[0].Eps(x);
  for (int k = 1; k < num_classes(); ++k) {
    double e = models_[static_cast<size_t>(k)].Eps(x);
    if (e > best_eps) {
      best_eps = e;
      best = k;
    }
  }
  return best;
}

double OneVsAllClassifier::EpsFor(int klass, const FeatureVector& x) const {
  return models_[static_cast<size_t>(klass)].Eps(x);
}

}  // namespace hazy::ml
