// Feature vectors: the f in In(id, f). Both representations the paper uses
// are supported — dense (Forest: 54 doubles) and sparse (DBLife/Citeseer:
// bag-of-words with ~7-60 non-zeros out of 41k-682k dimensions).

#ifndef HAZY_ML_VECTOR_H_
#define HAZY_ML_VECTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hazy::ml {

/// Norm order constants. kInf selects the max norm.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Hölder conjugate q of p: 1/p + 1/q = 1. (1 <-> inf, 2 <-> 2.)
double HolderConjugate(double p);

/// \brief A feature vector, either dense or sparse.
///
/// Sparse vectors hold parallel (sorted index, value) arrays; dense vectors
/// hold a contiguous value array. Values are doubles end to end so every
/// architecture (in memory or from disk) computes bit-identical eps values.
class FeatureVector {
 public:
  FeatureVector() = default;

  /// A dense vector with the given components.
  static FeatureVector Dense(std::vector<double> values);

  /// A sparse vector over dimension `dim`. Indices must be strictly
  /// increasing and < dim.
  static FeatureVector Sparse(std::vector<uint32_t> indices, std::vector<double> values,
                              uint32_t dim);

  bool is_dense() const { return dense_; }
  uint32_t dim() const { return dim_; }
  size_t nnz() const;

  /// Dot product with a dense weight vector; weights beyond w.size() are 0.
  double Dot(const std::vector<double>& w) const;

  /// w += scale * this, growing w to this vector's dimension if needed.
  void AddTo(std::vector<double>* w, double scale) const;

  /// ℓp norm: p == 1, 2, or kInf.
  double Norm(double p) const;

  /// Calls fn(index, value) for each (structurally) non-zero component.
  void ForEach(const std::function<void(uint32_t, double)>& fn) const;

  /// Component access (O(log nnz) for sparse).
  double At(uint32_t i) const;

  /// In-memory footprint in bytes (used for the Fig 6 memory accounting).
  size_t ApproxBytes() const;

  /// Appends a serialized form to `out`.
  void EncodeTo(std::string* out) const;

  /// Parses a vector from `src`, advancing it past the consumed bytes.
  static StatusOr<FeatureVector> DecodeFrom(std::string_view* src);

  bool operator==(const FeatureVector& o) const;

 private:
  bool dense_ = true;
  uint32_t dim_ = 0;
  std::vector<double> values_;
  std::vector<uint32_t> indices_;  // sparse only
};

/// A training example: entity id, features, and a label in {-1, +1}.
struct LabeledExample {
  int64_t id = 0;
  FeatureVector features;
  int label = 1;
};

}  // namespace hazy::ml

#endif  // HAZY_ML_VECTOR_H_
