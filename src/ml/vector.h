// Feature vectors: the f in In(id, f). Both representations the paper uses
// are supported — dense (Forest: 54 doubles) and sparse (DBLife/Citeseer:
// bag-of-words with ~7-60 non-zeros out of 41k-682k dimensions).
//
// Two forms:
//   FeatureVector      owns its arrays (training examples, MM rows, models).
//   FeatureVectorView  borrows bytes in place — either an owning vector's
//                      arrays or the encoded payload of an on-disk tuple —
//                      so the scan path scores records with zero per-tuple
//                      allocations. Views are trivially copyable and valid
//                      only while the backing bytes (page pin, string,
//                      vector) are.
//
// Encoded layout (also the on-disk tuple payload; parallel arrays so views
// are zero-copy):
//   dense:  u8 tag=1, u32 dim, dim raw doubles
//   sparse: u8 tag=0, u32 dim, u32 nnz, nnz raw u32 indices, nnz raw doubles

#ifndef HAZY_ML_VECTOR_H_
#define HAZY_ML_VECTOR_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hazy::ml {

/// Norm order constants. kInf selects the max norm.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Hölder conjugate q of p: 1/p + 1/q = 1. (1 <-> inf, 2 <-> 2.)
double HolderConjugate(double p);

/// \brief A feature vector, either dense or sparse.
///
/// Sparse vectors hold parallel (sorted index, value) arrays; dense vectors
/// hold a contiguous value array. Values are doubles end to end so every
/// architecture (in memory or from disk) computes bit-identical eps values.
class FeatureVector {
 public:
  FeatureVector() = default;

  /// A dense vector with the given components.
  static FeatureVector Dense(std::vector<double> values);

  /// A sparse vector over dimension `dim`. Indices must be strictly
  /// increasing and < dim.
  static FeatureVector Sparse(std::vector<uint32_t> indices, std::vector<double> values,
                              uint32_t dim);

  bool is_dense() const { return dense_; }
  uint32_t dim() const { return dim_; }
  size_t nnz() const;

  /// The value array (length dim() when dense, nnz() when sparse).
  const std::vector<double>& values() const { return values_; }
  /// The sorted index array (sparse only; empty when dense).
  const std::vector<uint32_t>& indices() const { return indices_; }

  /// Dot product with a dense weight vector; weights beyond w.size() are 0.
  double Dot(const std::vector<double>& w) const;

  /// w += scale * this, growing w to this vector's dimension if needed.
  void AddTo(std::vector<double>* w, double scale) const;

  /// ℓp norm: p == 1, 2, or kInf.
  double Norm(double p) const;

  /// Calls fn(index, value) for each (structurally) non-zero component.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_) {
      for (uint32_t i = 0; i < values_.size(); ++i) fn(i, values_[i]);
    } else {
      for (size_t i = 0; i < indices_.size(); ++i) fn(indices_[i], values_[i]);
    }
  }

  /// Component access (O(log nnz) for sparse).
  double At(uint32_t i) const;

  /// In-memory footprint in bytes (used for the Fig 6 memory accounting).
  size_t ApproxBytes() const;

  /// Appends a serialized form to `out`.
  void EncodeTo(std::string* out) const;

  /// Parses a vector from `src`, advancing it past the consumed bytes.
  static StatusOr<FeatureVector> DecodeFrom(std::string_view* src);

  bool operator==(const FeatureVector& o) const;

 private:
  bool dense_ = true;
  uint32_t dim_ = 0;
  std::vector<double> values_;
  std::vector<uint32_t> indices_;  // sparse only
};

/// \brief Non-owning dense/sparse view over a feature vector's arrays.
///
/// The arrays are raw little-endian/host byte ranges: views parsed out of
/// encoded tuple bytes point straight into the page (unaligned is fine —
/// all access goes through memcpy loads or unaligned SIMD loads), and views
/// over an owning FeatureVector point at its vectors. Scoring goes through
/// the ml/simd.h kernels, so a view and the vector it was parsed from
/// produce bit-identical eps values.
class FeatureVectorView {
 public:
  FeatureVectorView() = default;

  /// A view borrowing an owning vector's arrays (valid while `v` lives and
  /// is not mutated).
  static FeatureVectorView Of(const FeatureVector& v) {
    FeatureVectorView view;
    view.dense_ = v.is_dense();
    view.dim_ = v.dim();
    view.nnz_ = static_cast<uint32_t>(v.values().size());
    view.values_ = reinterpret_cast<const char*>(v.values().data());
    view.indices_ = reinterpret_cast<const char*>(v.indices().data());
    return view;
  }

  /// Parses a view out of encoded bytes, advancing `src` past the consumed
  /// prefix. Zero-copy: the view borrows `src`'s bytes.
  static StatusOr<FeatureVectorView> Parse(std::string_view* src);

  /// Status-free variant for the scan hot loop: false on truncation.
  static bool TryParse(std::string_view* src, FeatureVectorView* out);

  bool is_dense() const { return dense_; }
  uint32_t dim() const { return dim_; }
  /// Stored entry count (dim when dense, non-zeros when sparse).
  uint32_t size() const { return nnz_; }

  /// Entry i of the value array (unaligned-safe).
  double value(size_t i) const {
    double v;
    std::memcpy(&v, values_ + i * sizeof(double), sizeof(double));
    return v;
  }
  /// Entry i of the index array (sparse only).
  uint32_t index(size_t i) const {
    uint32_t v;
    std::memcpy(&v, indices_ + i * sizeof(uint32_t), sizeof(uint32_t));
    return v;
  }

  /// Raw byte pointers for the simd kernels.
  const double* values_ptr() const { return reinterpret_cast<const double*>(values_); }
  const uint32_t* indices_ptr() const {
    return reinterpret_cast<const uint32_t*>(indices_);
  }

  /// Dot product with a dense weight vector (via the simd kernels).
  double Dot(const double* w, size_t wn) const;
  double Dot(const std::vector<double>& w) const { return Dot(w.data(), w.size()); }

  /// Calls fn(index, value) per stored component.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_) {
      for (uint32_t i = 0; i < nnz_; ++i) fn(i, value(i));
    } else {
      for (uint32_t i = 0; i < nnz_; ++i) fn(index(i), value(i));
    }
  }

  /// An owning copy (for the cold paths that must outlive the backing page).
  FeatureVector Materialize() const;

 private:
  const char* values_ = nullptr;   // nnz_ unaligned doubles
  const char* indices_ = nullptr;  // sparse: nnz_ unaligned u32s
  uint32_t dim_ = 0;
  uint32_t nnz_ = 0;
  bool dense_ = true;
};

/// A training example: entity id, features, and a label in {-1, +1}.
struct LabeledExample {
  int64_t id = 0;
  FeatureVector features;
  int label = 1;
};

}  // namespace hazy::ml

#endif  // HAZY_ML_VECTOR_H_
