// Random Fourier features (Rahimi & Recht), as described in paper B.5.3:
// a random map z : R^d -> R^D with z(x)·z(y) ≈ K(x, y) for shift-invariant
// kernels, turning kernel classification back into linear classification —
// which is exactly what the feature-length sensitivity experiment
// (Figure 12(A)) scales up.

#ifndef HAZY_ML_RFF_H_
#define HAZY_ML_RFF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "ml/kernel.h"
#include "ml/vector.h"

namespace hazy::persist {
class StateWriter;
class StateReader;
}  // namespace hazy::persist

namespace hazy::ml {

/// \brief A sampled random feature map for an RBF or Laplacian kernel.
class RandomFourierFeatures {
 public:
  /// \param input_dim  dimensionality d of the input space
  /// \param output_dim target dimensionality D (the "feature length")
  /// \param kind       which kernel's spectral measure to sample
  /// \param gamma      kernel bandwidth
  /// \param seed       RNG seed (the map is fixed once sampled)
  RandomFourierFeatures(uint32_t input_dim, uint32_t output_dim, KernelKind kind,
                        double gamma, uint64_t seed);

  /// z(x): a dense D-dimensional vector with z(x)·z(y) ≈ K(x, y).
  FeatureVector Transform(const FeatureVector& x) const;

  uint32_t input_dim() const { return input_dim_; }
  uint32_t output_dim() const { return output_dim_; }

  /// Checkpoints the sampled map (directions + phases) so a restored
  /// process featurizes identically without re-sampling.
  void SaveState(persist::StateWriter* w) const;
  Status LoadState(persist::StateReader* r);

 private:
  uint32_t input_dim_;
  uint32_t output_dim_;
  std::vector<std::vector<double>> directions_;  // D x d
  std::vector<double> phases_;                   // D
};

}  // namespace hazy::ml

#endif  // HAZY_ML_RFF_H_
