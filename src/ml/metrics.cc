#include "ml/metrics.h"

namespace hazy::ml {

BinaryMetrics Evaluate(const LinearModel& model,
                       const std::vector<LabeledExample>& examples) {
  BinaryMetrics m;
  for (const auto& ex : examples) {
    int pred = model.Classify(ex.features);
    if (pred > 0 && ex.label > 0) {
      ++m.tp;
    } else if (pred > 0 && ex.label < 0) {
      ++m.fp;
    } else if (pred < 0 && ex.label < 0) {
      ++m.tn;
    } else {
      ++m.fn;
    }
  }
  return m;
}

}  // namespace hazy::ml
