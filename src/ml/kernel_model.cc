#include "ml/kernel_model.h"

#include <cmath>

#include "ml/loss.h"

namespace hazy::ml {

double KernelModel::Eps(const FeatureVector& x) const {
  double acc = 0.0;
  for (size_t i = 0; i < support.size(); ++i) {
    acc += coeffs[i] * KernelValue(kind, gamma, support[i], x);
  }
  return acc;
}

double KernelModel::CoeffL1() const {
  double s = 0.0;
  for (double c : coeffs) s += std::fabs(c);
  return s;
}

double KernelSgdTrainer::Step(KernelModel* model, const FeatureVector& x, int y) {
  model->kind = options_.kind;
  model->gamma = options_.gamma;
  const double eta =
      options_.eta0 / (1.0 + options_.lambda * options_.eta0 * static_cast<double>(t_));
  ++t_;

  const double z = model->Eps(x);
  const double g = LossGradient(LossKind::kHinge, z, y);

  double moved = 0.0;
  const double shrink = 1.0 - eta * options_.lambda;
  if (shrink != 1.0) {
    // ℓ2 regularization in the RKHS shrinks every coefficient; the ℓ1
    // movement is (1 - shrink) * ||c||_1.
    moved += (1.0 - shrink) * model->CoeffL1();
    for (double& c : model->coeffs) c *= shrink;
  }
  if (g != 0.0) {
    // Margin violation: the example joins the expansion with weight -eta*g
    // (= +eta for y = +1, -eta for y = -1 under hinge).
    model->support.push_back(x);
    model->coeffs.push_back(-eta * g);
    moved += std::fabs(eta * g);
  }
  return moved;
}

}  // namespace hazy::ml
