// Automatic method choice (Section 2.1): "If the user does not specify,
// Hazy chooses a method automatically (using a simple model selection
// algorithm based on leave-one-out-estimators)." We implement the simple
// holdout estimator variant: train each candidate on a split, keep the one
// with the best holdout accuracy.

#ifndef HAZY_ML_MODEL_SELECTION_H_
#define HAZY_ML_MODEL_SELECTION_H_

#include <vector>

#include "ml/loss.h"
#include "ml/vector.h"

namespace hazy::ml {

/// \brief Outcome of automatic model selection.
struct SelectionResult {
  LossKind best = LossKind::kHinge;
  double best_accuracy = 0.0;
  /// Accuracy per candidate, indexed by LossKind value.
  std::vector<double> accuracies;
};

/// Picks the loss with the best holdout accuracy. `holdout_fraction` of the
/// examples (deterministically chosen by `seed`) form the validation set.
SelectionResult SelectModel(const std::vector<LabeledExample>& examples,
                            double holdout_fraction = 0.2, uint64_t seed = 7);

}  // namespace hazy::ml

#endif  // HAZY_ML_MODEL_SELECTION_H_
