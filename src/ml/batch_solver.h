// Batch SVM/linear-model solver: the stand-in for SVMLight in the Figure 10
// comparison (see DESIGN.md substitutions). It repeatedly sweeps the whole
// training set until the regularized objective converges, which is the cost
// shape of a batch tool — orders of magnitude more work per model than the
// single-pass incremental SGD Hazy uses, at essentially the same quality.

#ifndef HAZY_ML_BATCH_SOLVER_H_
#define HAZY_ML_BATCH_SOLVER_H_

#include <vector>

#include "common/random.h"
#include "ml/loss.h"
#include "ml/model.h"
#include "ml/sgd.h"

namespace hazy::ml {

/// \brief Configuration for BatchSolver.
struct BatchSolverOptions {
  LossKind loss = LossKind::kHinge;
  double lambda = 1e-4;
  double eta0 = 0.1;
  /// Stop when the relative objective improvement over an epoch drops
  /// below this tolerance.
  double tolerance = 1e-4;
  int max_epochs = 200;
  int min_epochs = 5;
  uint64_t seed = 42;
};

/// \brief Result of a batch training run.
struct BatchResult {
  LinearModel model;
  int epochs = 0;
  double objective = 0.0;
};

/// Regularized empirical objective: λ/2 ‖w‖² + (1/n) Σ L(w·x − b, y).
double Objective(const LinearModel& model, const std::vector<LabeledExample>& train,
                 LossKind loss, double lambda);

/// \brief Multi-epoch solver run to convergence.
class BatchSolver {
 public:
  explicit BatchSolver(BatchSolverOptions options = {}) : options_(options) {}

  BatchResult Train(const std::vector<LabeledExample>& train) const;

 private:
  BatchSolverOptions options_;
};

}  // namespace hazy::ml

#endif  // HAZY_ML_BATCH_SOLVER_H_
