#include "ml/kernel.h"

#include <cmath>
#include <vector>

#include "ml/simd.h"

namespace hazy::ml {

namespace {
// Accumulates |x - y| component-wise distances for mixed representations.
template <typename Fn>
void ForEachDiff(const FeatureVector& x, const FeatureVector& y, Fn fn) {
  uint32_t dim = std::max(x.dim(), y.dim());
  // Materialize both to dense difference via ForEach merging.
  std::vector<double> diff(dim, 0.0);
  x.ForEach([&](uint32_t i, double v) { diff[i] += v; });
  y.ForEach([&](uint32_t i, double v) { diff[i] -= v; });
  for (double d : diff) fn(d);
}
}  // namespace

double KernelValue(KernelKind kind, double gamma, const FeatureVector& x,
                   const FeatureVector& y) {
  if (x.is_dense() && y.is_dense() && x.dim() == y.dim()) {
    // Both operands are contiguous doubles of the same length (the common
    // case for kernel views over dense corpora): skip the merge scratch and
    // use the vectorized distance kernels.
    switch (kind) {
      case KernelKind::kRbf:
        return std::exp(
            -gamma * simd::SquaredDistance(x.values().data(), y.values().data(),
                                           x.dim()));
      case KernelKind::kLaplacian:
        return std::exp(
            -gamma * simd::L1Distance(x.values().data(), y.values().data(), x.dim()));
    }
  }
  double acc = 0.0;
  switch (kind) {
    case KernelKind::kRbf:
      ForEachDiff(x, y, [&](double d) { acc += d * d; });
      return std::exp(-gamma * acc);
    case KernelKind::kLaplacian:
      ForEachDiff(x, y, [&](double d) { acc += std::fabs(d); });
      return std::exp(-gamma * acc);
  }
  return 0.0;
}

}  // namespace hazy::ml
