// Incremental stochastic (sub)gradient trainer — Hazy's default learning
// algorithm (Section 3.1, after Bottou's SGD). Each new training example is
// folded into the model with one (or a few) gradient steps, which is what
// makes per-update incremental maintenance possible: the model drifts a
// little per update, and the drift bound drives the Hölder water lines.

#ifndef HAZY_ML_SGD_H_
#define HAZY_ML_SGD_H_

#include <cstdint>

#include "ml/loss.h"
#include "ml/model.h"
#include "ml/vector.h"

namespace hazy::ml {

/// \brief Configuration for SgdTrainer.
struct SgdOptions {
  LossKind loss = LossKind::kHinge;
  /// ℓ2 regularization strength λ.
  double lambda = 1e-4;
  /// Base learning rate; the Bottou schedule decays it as
  /// eta_t = eta0 / (1 + lambda * eta0 * t).
  double eta0 = 0.5;
  /// Gradient steps applied per arriving example (1 = pure online).
  int steps_per_example = 1;
  /// Whether to update the bias term b.
  bool train_bias = true;
  /// Learning-rate multiplier for the bias term. Bottou's SVMSGD trains the
  /// bias with a much smaller rate so it does not swamp the per-feature
  /// updates of ℓ1-normalized text vectors.
  double bias_multiplier = 0.01;
};

/// \brief Online trainer maintaining a LinearModel across example arrivals.
class SgdTrainer {
 public:
  explicit SgdTrainer(SgdOptions options = {}) : options_(options) {}

  /// One online update: folds (x, y) into the model.
  void Step(LinearModel* model, const FeatureVector& x, int y);

  /// Folds one arriving training example (steps_per_example steps).
  void AddExample(LinearModel* model, const LabeledExample& ex);

  /// Number of gradient steps taken so far.
  uint64_t steps() const { return t_; }

  /// Resets the step counter (restarts the learning-rate schedule).
  void Reset() { t_ = 0; }

  /// Restores the step counter from a checkpoint so the learning-rate
  /// schedule resumes exactly where it left off (zero-retraining recovery).
  void RestoreSteps(uint64_t t) { t_ = t; }

  const SgdOptions& options() const { return options_; }

 private:
  SgdOptions options_;
  uint64_t t_ = 0;
};

}  // namespace hazy::ml

#endif  // HAZY_ML_SGD_H_
