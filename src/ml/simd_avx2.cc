// AVX2/FMA kernel implementations. This is the only translation unit built
// with -mavx2 -mfma (see CMakeLists.txt): keeping every AVX2 instruction
// here lets ml/simd.cc dispatch on cpuid at runtime — the rest of the
// binary (including the scalar fallback kernels) never emits AVX2, so the
// same build runs on pre-AVX2 hardware.
//
// Bit-compatibility: every kernel realizes the canonical summation order
// documented in ml/simd.h — a 256-bit fmadd over doubles is exactly the
// four fma stripes of the scalar reference, and Reduce4 is the same
// (a0 + a2) + (a1 + a3) tree.

#include "ml/simd.h"

#ifdef HAZY_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace hazy::ml::simd::avx2 {

namespace {

inline double LoadF64(const double* p) {
  double v;
  std::memcpy(&v, p, sizeof(double));
  return v;
}

inline uint32_t LoadU32(const uint32_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(uint32_t));
  return v;
}

// Reduces a 4-lane accumulator as (l0 + l2) + (l1 + l3) — the same tree the
// scalar reference uses, so the two paths agree bit for bit.
inline double Reduce4(__m256d acc) {
  __m128d lo = _mm256_castpd256_pd128(acc);    // l0, l1
  __m128d hi = _mm256_extractf128_pd(acc, 1);  // l2, l3
  __m128d s = _mm_add_pd(lo, hi);              // l0+l2, l1+l3
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// Pulls a view's whole payload toward the cache (a dense 54-dim vector is
// seven cache lines; touching only the first one leaves the dot stalled on
// the other six).
inline void PrefetchView(const FeatureVectorView& v) {
  const char* p = reinterpret_cast<const char*>(v.values_ptr());
  size_t bytes = static_cast<size_t>(v.size()) * sizeof(double);
  if (bytes > 512) bytes = 512;  // cap the instruction overhead per view
  for (size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off);
}

// Scores four equal-length dense rows in one pass: each row keeps its own
// 4-lane accumulator (so its summation order is exactly DotDense's), the
// four fma chains are independent (hiding each other's load latency), and
// the weight vector is loaded once per stripe instead of four times.
inline void Score4DenseEqual(const double* x0, const double* x1, const double* x2,
                             const double* x3, const double* w, size_t n, double b,
                             double* eps) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d wv = _mm256_loadu_pd(w + i);
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(x0 + i), wv, a0);
    a1 = _mm256_fmadd_pd(_mm256_loadu_pd(x1 + i), wv, a1);
    a2 = _mm256_fmadd_pd(_mm256_loadu_pd(x2 + i), wv, a2);
    a3 = _mm256_fmadd_pd(_mm256_loadu_pd(x3 + i), wv, a3);
  }
  double d0 = Reduce4(a0), d1 = Reduce4(a1), d2 = Reduce4(a2), d3 = Reduce4(a3);
  for (; i < n; ++i) {
    d0 = std::fma(LoadF64(x0 + i), w[i], d0);
    d1 = std::fma(LoadF64(x1 + i), w[i], d1);
    d2 = std::fma(LoadF64(x2 + i), w[i], d2);
    d3 = std::fma(LoadF64(x3 + i), w[i], d3);
  }
  eps[0] = d0 - b;
  eps[1] = d1 - b;
  eps[2] = d2 - b;
  eps[3] = d3 - b;
}

}  // namespace

double DotDense(const double* x, const double* w, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vacc = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(w + i), vacc);
  }
  double acc = Reduce4(vacc);
  for (; i < n; ++i) acc = std::fma(LoadF64(x + i), w[i], acc);
  return acc;
}

double DotSparse(const uint32_t* idx, const double* val, size_t nnz,
                 const double* w, size_t wn) {
  if (nnz == 0) return 0.0;
  if (LoadU32(idx + nnz - 1) >= wn) {
    return detail::DotSparseGuarded(idx, val, nnz, w, wn);
  }
  __m256d vacc = _mm256_setzero_pd();
  // All-lanes mask + zeroed source: the masked gather form keeps GCC's
  // uninitialized-value analysis quiet (the plain intrinsic seeds itself
  // with _mm256_undefined_pd) at identical cost.
  const __m256d gather_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  size_t i = 0;
  for (; i + 4 <= nnz; i += 4) {
    __m128i j = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    __m256d gathered =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), w, j, gather_mask, 8);
    vacc = _mm256_fmadd_pd(_mm256_loadu_pd(val + i), gathered, vacc);
  }
  double acc = Reduce4(vacc);
  for (; i < nnz; ++i) acc = std::fma(LoadF64(val + i), w[LoadU32(idx + i)], acc);
  return acc;
}

void AxpyDense(double scale, const double* x, double* w, size_t n) {
  __m256d vs = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d r = _mm256_fmadd_pd(vs, _mm256_loadu_pd(x + i), _mm256_loadu_pd(w + i));
    _mm256_storeu_pd(w + i, r);
  }
  for (; i < n; ++i) w[i] = std::fma(scale, LoadF64(x + i), w[i]);
}

void Scale(double* w, size_t n, double s) {
  __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(w + i, _mm256_mul_pd(_mm256_loadu_pd(w + i), vs));
  }
  for (; i < n; ++i) w[i] *= s;
}

double SquaredDistance(const double* x, const double* y, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    vacc = _mm256_fmadd_pd(d, d, vacc);
  }
  double acc = Reduce4(vacc);
  for (; i < n; ++i) {
    double d = LoadF64(x + i) - LoadF64(y + i);
    acc = std::fma(d, d, acc);
  }
  return acc;
}

double L1Distance(const double* x, const double* y, size_t n) {
  // |d| = clear the sign bit.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d vacc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    vacc = _mm256_add_pd(vacc, _mm256_andnot_pd(sign_mask, d));
  }
  double acc = Reduce4(vacc);
  for (; i < n; ++i) acc += std::fabs(LoadF64(x + i) - LoadF64(y + i));
  return acc;
}

void ScoreStrip(const FeatureVectorView* views, size_t n, const double* w,
                size_t wn, double b, double* eps_out) {
  if (n > 0) PrefetchView(views[0]);
  size_t i = 0;
  while (i < n) {
    // Four-row blocks when the next rows are dense with one common clamped
    // length (the typical page of a fixed-dim corpus).
    if (i + 4 <= n && views[i].is_dense()) {
      size_t len = views[i].size() < wn ? views[i].size() : wn;
      bool block_ok = true;
      for (size_t k = 1; k < 4; ++k) {
        const FeatureVectorView& vk = views[i + k];
        if (!vk.is_dense() || (vk.size() < wn ? vk.size() : wn) != len) {
          block_ok = false;
          break;
        }
      }
      if (block_ok) {
        for (size_t k = 4; k < 8 && i + k < n; ++k) PrefetchView(views[i + k]);
        Score4DenseEqual(views[i].values_ptr(), views[i + 1].values_ptr(),
                         views[i + 2].values_ptr(), views[i + 3].values_ptr(), w,
                         len, b, eps_out + i);
        i += 4;
        continue;
      }
    }
    const FeatureVectorView& v = views[i];
    if (i + 1 < n) PrefetchView(views[i + 1]);
    double dot = v.is_dense() ? DotDense(v.values_ptr(), w, v.size() < wn ? v.size() : wn)
                              : DotSparse(v.indices_ptr(), v.values_ptr(), v.size(), w, wn);
    eps_out[i] = dot - b;
    ++i;
  }
}

}  // namespace hazy::ml::simd::avx2

#endif  // HAZY_HAVE_AVX2
