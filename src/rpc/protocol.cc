#include "rpc/protocol.h"

#include "common/strings.h"
#include "sql/result_set.h"
#include "storage/coding.h"

namespace hazy::rpc {

bool IsKnownOpcode(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kHello:
    case Opcode::kQuery:
    case Opcode::kPrepare:
    case Opcode::kExecPrepared:
    case Opcode::kCloseStmt:
    case Opcode::kPing:
    case Opcode::kGoodbye:
    case Opcode::kStats:
    case Opcode::kHelloOk:
    case Opcode::kResult:
    case Opcode::kPrepared:
    case Opcode::kStmtClosed:
    case Opcode::kPong:
    case Opcode::kGoodbyeOk:
    case Opcode::kError:
    case Opcode::kBusy:
      return true;
  }
  return false;
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHello:
      return "HELLO";
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kPrepare:
      return "PREPARE";
    case Opcode::kExecPrepared:
      return "EXEC_PREPARED";
    case Opcode::kCloseStmt:
      return "CLOSE_STMT";
    case Opcode::kPing:
      return "PING";
    case Opcode::kGoodbye:
      return "GOODBYE";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kHelloOk:
      return "HELLO_OK";
    case Opcode::kResult:
      return "RESULT";
    case Opcode::kPrepared:
      return "PREPARED";
    case Opcode::kStmtClosed:
      return "STMT_CLOSED";
    case Opcode::kPong:
      return "PONG";
    case Opcode::kGoodbyeOk:
      return "GOODBYE_OK";
    case Opcode::kError:
      return "ERROR";
    case Opcode::kBusy:
      return "BUSY";
  }
  return "?";
}

void EncodeFrame(Opcode opcode, uint32_t request_id, std::string_view payload,
                 std::string* out) {
  storage::PutFixed32(out, static_cast<uint32_t>(payload.size() + 5));
  out->push_back(static_cast<char>(opcode));
  storage::PutFixed32(out, request_id);
  out->append(payload.data(), payload.size());
}

FrameDecode TryDecodeFrame(std::string_view buf, FrameView* frame,
                           size_t* frame_bytes, std::string* error) {
  if (buf.size() < 4) return FrameDecode::kNeedMore;
  const uint32_t length = storage::DecodeFixed32(buf.data());
  if (length < 5) {
    if (error != nullptr) {
      *error = StrFormat("frame length %u below the 5-byte header", length);
    }
    return FrameDecode::kBad;
  }
  if (length > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = StrFormat("frame length %u exceeds the %u-byte cap", length,
                         kMaxFrameBytes);
    }
    return FrameDecode::kBad;
  }
  // Validate the opcode as soon as its byte is present: a garbage stream
  // fails fast instead of waiting for `length` bytes that never come.
  if (buf.size() >= 5 && !IsKnownOpcode(static_cast<uint8_t>(buf[4]))) {
    if (error != nullptr) {
      *error = StrFormat("unknown opcode 0x%02x",
                         static_cast<unsigned>(static_cast<uint8_t>(buf[4])));
    }
    return FrameDecode::kBad;
  }
  if (buf.size() < 4 + static_cast<size_t>(length)) return FrameDecode::kNeedMore;
  frame->opcode = static_cast<Opcode>(static_cast<uint8_t>(buf[4]));
  frame->request_id = storage::DecodeFixed32(buf.data() + 5);
  frame->payload = buf.substr(kFrameHeaderBytes, length - 5);
  *frame_bytes = 4 + static_cast<size_t>(length);
  return FrameDecode::kFrame;
}

void EncodeHelloPayload(uint32_t version, std::string_view name, std::string* out) {
  storage::PutFixed32(out, version);
  out->append(name.data(), name.size());
}

Status DecodeHelloPayload(std::string_view payload, uint32_t* version,
                          std::string* name) {
  if (!storage::GetFixed32(&payload, version)) {
    return Status::Corruption("truncated HELLO payload");
  }
  name->assign(payload.data(), payload.size());
  return Status::OK();
}

void EncodeErrorPayload(const Status& status, std::string* out) {
  out->push_back(static_cast<char>(StatusCodeToWire(status.code())));
  out->append(status.message());
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.empty()) return Status::Corruption("empty error payload");
  StatusCode code;
  std::string message(payload.substr(1));
  if (!StatusCodeFromWire(static_cast<uint8_t>(payload[0]), &code)) {
    return Status::Internal(
        StrFormat("remote error with unknown wire code %u: %s",
                  static_cast<unsigned>(static_cast<uint8_t>(payload[0])),
                  message.c_str()));
  }
  return Status(code, std::move(message));
}

void EncodePreparedPayload(uint32_t stmt_id, uint32_t num_params, std::string* out) {
  storage::PutFixed32(out, stmt_id);
  storage::PutFixed32(out, num_params);
}

Status DecodePreparedPayload(std::string_view payload, uint32_t* stmt_id,
                             uint32_t* num_params) {
  if (!storage::GetFixed32(&payload, stmt_id) ||
      !storage::GetFixed32(&payload, num_params) || !payload.empty()) {
    return Status::Corruption("malformed PREPARED payload");
  }
  return Status::OK();
}

void EncodeExecPayload(uint32_t stmt_id, const std::vector<storage::Value>& params,
                       std::string* out) {
  storage::PutFixed32(out, stmt_id);
  storage::PutFixed16(out, static_cast<uint16_t>(params.size()));
  persist::StateWriter w(out);
  for (const auto& v : params) sql::EncodeValue(&w, v);
}

Status DecodeExecPayload(std::string_view payload, uint32_t* stmt_id,
                         std::vector<storage::Value>* params) {
  uint16_t n = 0;
  if (!storage::GetFixed32(&payload, stmt_id) || !storage::GetFixed16(&payload, &n)) {
    return Status::Corruption("truncated EXEC_PREPARED payload");
  }
  persist::StateReader r(payload);
  HAZY_RETURN_NOT_OK(r.CheckCount(n));
  params->clear();
  params->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    storage::Value v;
    HAZY_RETURN_NOT_OK(sql::DecodeValue(&r, &v));
    params->push_back(std::move(v));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after EXEC_PREPARED parameters");
  }
  return Status::OK();
}

void EncodeCloseStmtPayload(uint32_t stmt_id, std::string* out) {
  storage::PutFixed32(out, stmt_id);
}

Status DecodeCloseStmtPayload(std::string_view payload, uint32_t* stmt_id) {
  if (!storage::GetFixed32(&payload, stmt_id) || !payload.empty()) {
    return Status::Corruption("malformed CLOSE_STMT payload");
  }
  return Status::OK();
}

}  // namespace hazy::rpc
