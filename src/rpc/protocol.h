// The Hazy wire protocol: length-prefixed binary frames carrying SQL in and
// serialized ResultSets out (the network analogue of the paper's §B.1 IPC
// between PostgreSQL and the Hazy process).
//
// Frame layout (all little-endian):
//
//   u32 length      — byte count of everything after this field
//   u8  opcode      — request/response kind (Opcode below)
//   u32 request_id  — echoed verbatim in the response so a pipelining client
//                     can match responses to in-flight requests
//   ...payload      — opcode-specific (length - 5 bytes)
//
// Payloads reuse the persist/serde conventions (StateWriter/StateReader over
// storage/coding.h primitives), and error payloads carry the frozen
// common/status.h wire code so remote failures keep their category, not just
// their message. Every number here is wire-frozen: bump kProtocolVersion and
// append, never renumber.

#ifndef HAZY_RPC_PROTOCOL_H_
#define HAZY_RPC_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace hazy::rpc {

/// Protocol revision sent in HELLO; the server rejects clients that speak a
/// newer major revision than it does.
constexpr uint32_t kProtocolVersion = 1;

/// u32 length + u8 opcode + u32 request id.
constexpr size_t kFrameHeaderBytes = 9;

/// Hard ceiling on `length`. A frame longer than this is garbage (or an
/// attack) and fails the connection instead of allocating unboundedly.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Frame kinds. Requests are < 0x80; responses have the high bit set.
enum class Opcode : uint8_t {
  // Requests (client -> server).
  kHello = 0x01,         ///< u32 version, string client name
  kQuery = 0x02,         ///< payload = SQL text
  kPrepare = 0x03,       ///< payload = SQL template with '?' placeholders
  kExecPrepared = 0x04,  ///< u32 stmt id, param list
  kCloseStmt = 0x05,     ///< u32 stmt id
  kPing = 0x06,          ///< empty
  kGoodbye = 0x07,       ///< empty; server acks then closes
  kStats = 0x08,         ///< metrics snapshot; payload = substring filter
                         ///< ("" = all). Answered with kResult. Served on
                         ///< the reactor thread, bypassing admission, so it
                         ///< works while the server is saturated.

  // Responses (server -> client).
  kHelloOk = 0x81,    ///< u32 version, string server name
  kResult = 0x82,     ///< encoded sql::ResultSet
  kPrepared = 0x83,   ///< u32 stmt id, u32 param count
  kStmtClosed = 0x84, ///< empty
  kPong = 0x85,       ///< empty
  kGoodbyeOk = 0x86,  ///< empty; connection closes after this frame
  kError = 0xE0,      ///< u8 status wire code, message bytes
  kBusy = 0xE1,       ///< same payload as kError; admission queue was full
};

/// True for byte values that decode to a known Opcode.
bool IsKnownOpcode(uint8_t op);

/// Debug name ("QUERY", "RESULT", ...).
const char* OpcodeName(Opcode op);

/// A decoded frame whose payload aliases the receive buffer.
struct FrameView {
  Opcode opcode = Opcode::kPing;
  uint32_t request_id = 0;
  std::string_view payload;
};

/// An owned frame (for handing off across threads).
struct Frame {
  Opcode opcode = Opcode::kPing;
  uint32_t request_id = 0;
  std::string payload;

  static Frame Copy(const FrameView& v) {
    return Frame{v.opcode, v.request_id, std::string(v.payload)};
  }
};

/// Appends one encoded frame to *out.
void EncodeFrame(Opcode opcode, uint32_t request_id, std::string_view payload,
                 std::string* out);

/// Result of attempting to decode a frame from the front of a buffer.
enum class FrameDecode {
  kFrame,     ///< *frame filled, *frame_bytes consumed
  kNeedMore,  ///< buffer holds a torn prefix; read more bytes
  kBad,       ///< unrecoverable garbage (oversized/unknown opcode) — close
};

/// Tries to decode one frame from the front of `buf`. On kFrame, `*frame`
/// aliases `buf` and `*frame_bytes` is the total encoded size to consume.
/// On kBad, `*error` (if non-null) describes the problem.
FrameDecode TryDecodeFrame(std::string_view buf, FrameView* frame,
                           size_t* frame_bytes, std::string* error);

// --- Payload helpers -------------------------------------------------------

/// HELLO / HELLO_OK payloads: u32 version + name bytes.
void EncodeHelloPayload(uint32_t version, std::string_view name, std::string* out);
Status DecodeHelloPayload(std::string_view payload, uint32_t* version,
                          std::string* name);

/// ERROR / BUSY payloads: u8 frozen status wire code + message bytes.
void EncodeErrorPayload(const Status& status, std::string* out);
/// Reconstructs the remote Status (Internal for unknown wire codes).
Status DecodeErrorPayload(std::string_view payload);

/// PREPARED payloads: u32 statement id + u32 parameter count.
void EncodePreparedPayload(uint32_t stmt_id, uint32_t num_params, std::string* out);
Status DecodePreparedPayload(std::string_view payload, uint32_t* stmt_id,
                             uint32_t* num_params);

/// EXEC_PREPARED payloads: u32 statement id + u16 count + typed values
/// (sql::EncodeValue codec).
void EncodeExecPayload(uint32_t stmt_id, const std::vector<storage::Value>& params,
                       std::string* out);
Status DecodeExecPayload(std::string_view payload, uint32_t* stmt_id,
                         std::vector<storage::Value>* params);

/// CLOSE_STMT payloads: u32 statement id.
void EncodeCloseStmtPayload(uint32_t stmt_id, std::string* out);
Status DecodeCloseStmtPayload(std::string_view payload, uint32_t* stmt_id);

}  // namespace hazy::rpc

#endif  // HAZY_RPC_PROTOCOL_H_
