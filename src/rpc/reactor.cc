#include "rpc/reactor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace hazy::rpc {

namespace {

constexpr uint64_t kListenSentinel = 0;
constexpr uint64_t kWakeSentinel = 1;

// Bytes read per readable event. Level-triggered epoll re-reports the fd if
// more input remains, so one bounded read per event keeps a firehose
// connection from starving the rest.
constexpr size_t kReadChunk = 256 * 1024;

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Reactor::Reactor(ReactorOptions options, ReactorHandler* handler)
    : options_(std::move(options)), handler_(handler) {}

Reactor::~Reactor() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Reactor::Open() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad listen address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) return Errno("listen");

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return Errno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenSentinel;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeSentinel;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::OK();
}

void Reactor::Stop() {
  {
    MutexLock lock(mu_);
    stop_requested_ = true;
  }
  Wake();
}

void Reactor::Send(uint64_t conn_id, std::string bytes, bool close_after_flush) {
  {
    MutexLock lock(mu_);
    pending_sends_.push_back(PendingSend{conn_id, std::move(bytes), close_after_flush});
  }
  Wake();
}

void Reactor::CloseConnection(uint64_t conn_id) {
  {
    MutexLock lock(mu_);
    pending_closes_.push_back(conn_id);
  }
  Wake();
}

void Reactor::Wake() {
  uint64_t one = 1;
  // An EAGAIN here means the counter is already non-zero: the loop is waking.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::Run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) break;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t flags = events[i].events;
      if (id == kListenSentinel) {
        AcceptAll();
        continue;
      }
      if (id == kWakeSentinel) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainPending();
        continue;
      }
      if (conns_.find(id) == conns_.end()) continue;  // closed earlier this batch
      if (flags & (EPOLLHUP | EPOLLERR)) {
        DestroyConn(id);
        continue;
      }
      if (flags & EPOLLIN) HandleReadable(id);
      if ((flags & EPOLLOUT) && conns_.count(id)) HandleWritable(id);
    }
  }
  // The loop is done: close every accepted connection so a peer blocked in
  // recv() sees EOF instead of a half-open socket nobody will ever answer.
  while (!conns_.empty()) DestroyConn(conns_.begin()->first);
}

void Reactor::AcceptAll() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc.: retry on the next accept event
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    num_connections_.fetch_add(1, std::memory_order_relaxed);
    handler_->OnConnect(id);
  }
}

void Reactor::HandleReadable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  const size_t old_size = conn.in.size();
  conn.in.resize(old_size + kReadChunk);
  const ssize_t n = ::read(conn.fd, conn.in.data() + old_size, kReadChunk);
  if (n <= 0) {
    conn.in.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return;
    DestroyConn(conn_id);  // EOF or hard error
    return;
  }
  conn.in.resize(old_size + static_cast<size_t>(n));

  size_t consumed = 0;
  for (;;) {
    FrameView frame;
    size_t frame_bytes = 0;
    std::string error;
    const std::string_view rest =
        std::string_view(conn.in).substr(consumed);
    const FrameDecode rc = TryDecodeFrame(rest, &frame, &frame_bytes, &error);
    if (rc == FrameDecode::kNeedMore) break;
    if (rc == FrameDecode::kBad) {
      DestroyConn(conn_id);
      return;
    }
    handler_->OnFrame(conn_id, frame);
    // The handler may have closed the connection (protocol violation).
    if (conns_.find(conn_id) == conns_.end()) return;
    consumed += frame_bytes;
  }
  if (consumed > 0) conn.in.erase(0, consumed);
}

void Reactor::HandleWritable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  FlushOutput(conn_id, &it->second);
}

void Reactor::FlushOutput(uint64_t conn_id, Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      DestroyConn(conn_id);
      return;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  if (conn->out_off >= conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
    if (conn->close_after_flush) {
      DestroyConn(conn_id);
      return;
    }
  }
  UpdateInterest(conn_id, conn);
}

void Reactor::UpdateInterest(uint64_t conn_id, Conn* conn) {
  const bool want_write = conn->out_off < conn->out.size();
  if (want_write == conn->want_write) return;
  conn->want_write = want_write;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Reactor::DrainPending() {
  std::vector<PendingSend> sends;
  std::vector<uint64_t> closes;
  {
    MutexLock lock(mu_);
    sends.swap(pending_sends_);
    closes.swap(pending_closes_);
  }
  for (auto& s : sends) {
    auto it = conns_.find(s.conn_id);
    if (it == conns_.end()) continue;  // peer already gone
    Conn& conn = it->second;
    conn.out.append(s.bytes);
    if (s.close_after_flush) conn.close_after_flush = true;
    FlushOutput(s.conn_id, &conn);
  }
  for (uint64_t id : closes) DestroyConn(id);
}

void Reactor::DestroyConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  num_connections_.fetch_sub(1, std::memory_order_relaxed);
  handler_->OnDisconnect(conn_id);
}

}  // namespace hazy::rpc
