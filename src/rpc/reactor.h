// Single-threaded epoll event loop for the Hazy server: non-blocking
// accept/read/write with per-connection input/output buffers. The reactor
// owns the sockets and the framing; everything above it (sessions, SQL
// execution) sees only whole frames via ReactorHandler and answers through
// the thread-safe Send(), so slow statements running on the worker pool
// never stall the I/O thread.

#ifndef HAZY_RPC_REACTOR_H_
#define HAZY_RPC_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rpc/protocol.h"

namespace hazy::rpc {

/// Callbacks invoked on the reactor thread. OnFrame receives a FrameView
/// aliasing the connection's input buffer — copy (Frame::Copy) before handing
/// off to another thread.
class ReactorHandler {
 public:
  virtual ~ReactorHandler() = default;
  virtual void OnConnect(uint64_t conn_id) { (void)conn_id; }
  virtual void OnFrame(uint64_t conn_id, const FrameView& frame) = 0;
  /// Fires exactly once per accepted connection, whatever closed it.
  virtual void OnDisconnect(uint64_t conn_id) { (void)conn_id; }
};

struct ReactorOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 binds an ephemeral port; read it back via port().
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 65536;
};

/// \brief epoll reactor: one thread runs Run(); any thread may call Send(),
/// CloseConnection(), or Stop() — they enqueue work and wake the loop via an
/// eventfd.
class Reactor {
 public:
  Reactor(ReactorOptions options, ReactorHandler* handler);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds + listens + sets up epoll. Call once before Run().
  Status Open();

  /// Runs the event loop on the calling thread until Stop().
  void Run();

  /// Thread-safe; Run() returns soon after.
  void Stop() EXCLUDES(mu_);

  /// Port actually bound (resolves an ephemeral request). Valid after Open().
  uint16_t port() const { return bound_port_; }

  /// Connections currently open (accepted, not yet closed).
  size_t num_connections() const {
    return num_connections_.load(std::memory_order_relaxed);
  }

  /// Queues `bytes` (one or more encoded frames) for `conn_id`. Thread-safe.
  /// With `close_after_flush`, the connection closes once the bytes are on
  /// the wire (the GOODBYE handshake). Unknown conn ids are dropped silently:
  /// the peer may have disconnected while its response was being computed.
  void Send(uint64_t conn_id, std::string bytes, bool close_after_flush = false)
      EXCLUDES(mu_);

  /// Thread-safe immediate close (pending output is discarded).
  void CloseConnection(uint64_t conn_id) EXCLUDES(mu_);

 private:
  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    size_t out_off = 0;
    bool close_after_flush = false;
    bool want_write = false;
  };

  struct PendingSend {
    uint64_t conn_id;
    std::string bytes;
    bool close_after_flush;
  };

  void Wake();
  void DrainPending() EXCLUDES(mu_);
  void AcceptAll();
  void HandleReadable(uint64_t conn_id);
  void HandleWritable(uint64_t conn_id);
  void FlushOutput(uint64_t conn_id, Conn* conn);
  void UpdateInterest(uint64_t conn_id, Conn* conn);
  void DestroyConn(uint64_t conn_id);

  ReactorOptions options_;
  ReactorHandler* handler_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;

  uint64_t next_conn_id_ = 2;  // 0 = listen sentinel, 1 = wake sentinel
  std::unordered_map<uint64_t, Conn> conns_;
  std::atomic<size_t> num_connections_{0};

  Mutex mu_;
  std::vector<PendingSend> pending_sends_ GUARDED_BY(mu_);
  std::vector<uint64_t> pending_closes_ GUARDED_BY(mu_);
  bool stop_requested_ GUARDED_BY(mu_) = false;
};

}  // namespace hazy::rpc

#endif  // HAZY_RPC_REACTOR_H_
