#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hazy::obs {

namespace {

// A family's Prometheus TYPE given the kinds of its samples.
const char* PromType(SampleKind k) {
  switch (k) {
    case SampleKind::kCounter:
    case SampleKind::kHistCount:
    case SampleKind::kHistSum:
      return "counter";
    case SampleKind::kGauge:
    case SampleKind::kHistQuantile:
      return "gauge";
  }
  return "untyped";
}

std::string FormatValue(double v) {
  // Integral values print without a fraction; everything else keeps enough
  // digits to round-trip monitoring math.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

const char* SampleKindName(SampleKind k) {
  switch (k) {
    case SampleKind::kCounter:
      return "counter";
    case SampleKind::kGauge:
      return "gauge";
    case SampleKind::kHistCount:
      return "hist_count";
    case SampleKind::kHistSum:
      return "hist_sum";
    case SampleKind::kHistQuantile:
      return "hist_quantile";
  }
  return "unknown";
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)] += 1;
  count_ += 1;
  sum_ += value < 0 ? 0 : value;
}

int Histogram::BucketIndex(double value) {
  if (!(value >= 1)) return 0;  // negatives and NaN land in bucket 0
  if (value >= 9.223372036854776e18) return kNumBuckets - 1;  // >= 2^63
  uint64_t v = static_cast<uint64_t>(value);
  int log2 = 63 - __builtin_clzll(v);
  return std::min(1 + log2, kNumBuckets - 1);
}

double Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 1.0;
  return std::ldexp(1.0, i);  // 2^i
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> out;
  for (int i = 0; i < kNumBuckets; ++i) out[i] = buckets_[i].load();
  return out;
}

double Histogram::Quantile(double q) const {
  std::array<uint64_t, kNumBuckets> b = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : b) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(total);
  double cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (b[i] == 0) continue;
    double next = cum + static_cast<double>(b[i]);
    if (next >= target) {
      double lower = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      double width = i == 0 ? 1.0 : lower;  // bucket i spans [2^(i-1), 2^i)
      double frac = (target - cum) / static_cast<double>(b[i]);
      return lower + frac * width;
    }
    cum = next;
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t c = other.buckets_[i].load();
    if (c != 0) buckets_[i] += c;
  }
  count_ += other.count_.load();
  sum_ += other.sum_.load();
}

Registry& Registry::Global() {
  static Registry* r = new Registry();  // never destroyed: outlive all users
  return *r;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels) {
  MutexLock lock(mu_);
  auto& slot = counters_[{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels) {
  MutexLock lock(mu_);
  auto& slot = gauges_[{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels) {
  MutexLock lock(mu_);
  auto& slot = histograms_[{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t Registry::RegisterCollector(CollectorFn fn) {
  MutexLock lock(mu_);
  uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void Registry::UnregisterCollector(uint64_t id) {
  MutexLock lock(mu_);
  auto it = collectors_.find(id);
  if (it == collectors_.end()) return;
  SampleList last;
  it->second(&last);
  for (const Sample& s : last.samples) {
    if (s.kind == SampleKind::kCounter) {
      retired_counters_[{s.name, s.labels}] += s.value;
    }
  }
  collectors_.erase(it);
}

std::vector<Sample> Registry::Snapshot() const {
  MutexLock lock(mu_);
  // Counter samples merge by (name, labels): live collector output plus
  // retired totals from unregistered collectors.
  std::map<Key, double> counter_vals;
  std::vector<Sample> out;
  for (const auto& [key, c] : counters_) {
    counter_vals[key] += static_cast<double>(c->value());
  }
  for (const auto& [key, v] : retired_counters_) counter_vals[key] += v;
  for (const auto& [key, g] : gauges_) {
    out.push_back({key.first, key.second, SampleKind::kGauge,
                   static_cast<double>(g->value())});
  }
  for (const auto& [key, h] : histograms_) {
    out.push_back({key.first + "_count", key.second, SampleKind::kHistCount,
                   static_cast<double>(h->count())});
    out.push_back({key.first + "_sum", key.second, SampleKind::kHistSum,
                   h->sum()});
    out.push_back({key.first + "_p50", key.second, SampleKind::kHistQuantile,
                   h->Quantile(0.50)});
    out.push_back({key.first + "_p95", key.second, SampleKind::kHistQuantile,
                   h->Quantile(0.95)});
    out.push_back({key.first + "_p99", key.second, SampleKind::kHistQuantile,
                   h->Quantile(0.99)});
  }
  SampleList collected;
  for (const auto& entry : collectors_) entry.second(&collected);
  for (Sample& s : collected.samples) {
    if (s.kind == SampleKind::kCounter) {
      counter_vals[{s.name, s.labels}] += s.value;
    } else {
      out.push_back(std::move(s));
    }
  }
  for (const auto& [key, v] : counter_vals) {
    out.push_back({key.first, key.second, SampleKind::kCounter, v});
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

std::string Registry::RenderPrometheus() const {
  // One line family grouping pass over a snapshot, except histograms which
  // render as proper summaries (quantile label, _sum, _count) from the raw
  // instruments.
  struct Family {
    const char* type = "untyped";
    std::vector<std::string> lines;
  };
  std::map<std::string, Family> families;
  auto add = [&families](const std::string& name, const std::string& labels,
                         SampleKind kind, double value) {
    Family& f = families[name];
    f.type = PromType(kind);
    std::string line = name;
    if (!labels.empty()) line += "{" + labels + "}";
    line += " " + FormatValue(value);
    f.lines.push_back(std::move(line));
  };

  {
    MutexLock lock(mu_);
    std::map<Key, double> counter_vals;
    for (const auto& [key, c] : counters_) {
      counter_vals[key] += static_cast<double>(c->value());
    }
    for (const auto& [key, v] : retired_counters_) counter_vals[key] += v;
    SampleList collected;
    for (const auto& entry : collectors_) entry.second(&collected);
    for (const Sample& s : collected.samples) {
      if (s.kind == SampleKind::kCounter) {
        counter_vals[{s.name, s.labels}] += s.value;
      } else {
        add(s.name, s.labels, s.kind, s.value);
      }
    }
    for (const auto& [key, v] : counter_vals) {
      add(key.first, key.second, SampleKind::kCounter, v);
    }
    for (const auto& [key, g] : gauges_) {
      add(key.first, key.second, SampleKind::kGauge,
          static_cast<double>(g->value()));
    }
    for (const auto& [key, h] : histograms_) {
      Family& f = families[key.first];
      f.type = "summary";
      static constexpr struct {
        const char* label;
        double q;
      } kQuantiles[] = {{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}};
      for (const auto& [qlabel, q] : kQuantiles) {
        std::string labels = key.second.empty()
                                 ? std::string("quantile=\"") + qlabel + "\""
                                 : key.second + ",quantile=\"" + qlabel + "\"";
        std::string line = key.first + "{" + labels + "} " +
                           FormatValue(h->Quantile(q));
        f.lines.push_back(std::move(line));
      }
      auto suffixed = [&key](const char* suffix, double v) {
        std::string line = key.first + suffix;
        if (!key.second.empty()) line += "{" + key.second + "}";
        line += " " + FormatValue(v);
        return line;
      };
      f.lines.push_back(suffixed("_sum", h->sum()));
      f.lines.push_back(
          suffixed("_count", static_cast<double>(h->count())));
    }
  }

  std::string out;
  for (const auto& [name, family] : families) {
    out += "# TYPE " + name + " " + family.type + "\n";
    for (const std::string& line : family.lines) out += line + "\n";
  }
  return out;
}

void Registry::ResetValuesForTest() {
  MutexLock lock(mu_);
  for (auto& entry : counters_) *entry.second = Counter();
  for (auto& entry : gauges_) entry.second->Set(0);
  for (auto& entry : histograms_) *entry.second = Histogram();
  retired_counters_.clear();
}

}  // namespace hazy::obs
