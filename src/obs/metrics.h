// Process-wide metrics registry: lock-free counters and gauges over relaxed
// atomics, log-bucketed latency histograms with quantile extraction, and
// labeled metric families.
//
// Two ways for a subsystem to publish:
//
//  1. Native instruments — `Registry::GetCounter/GetGauge/GetHistogram`
//     return stable pointers owned by the registry for the life of the
//     process. Hot paths hold the pointer and bump it with relaxed atomics.
//
//  2. Collectors — a callback registered with `RegisterCollector` that is
//     polled at snapshot time and appends samples from existing stats
//     structs (`WalStats`, `BufferPoolStats`, `PagerStats`, `ViewStats`).
//     This keeps those structs as the source of truth (tests keep reading
//     them directly) while the registry becomes the single export surface.
//     When a collector is unregistered (its subsystem is being torn down),
//     its final counter samples are folded into persistent "retired"
//     totals, so process-lifetime counters survive e.g. a `Database` close.
//
// Every sample is (name, labels, kind, value). Labels are a preformatted
// Prometheus label body without braces, e.g. `view="spam",arch="hazy_mm"`,
// or empty. All reads are relaxed: each field is independently consistent,
// not a cross-field atomic snapshot — fine for monitoring, documented here
// once so call sites don't re-litigate it.

#ifndef HAZY_OBS_METRICS_H_
#define HAZY_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hazy::obs {

/// \brief A uint64 counter cell: copyable, relaxed-atomic, and usable as a
/// drop-in replacement for a plain `uint64_t` stats field.
///
/// Copy/assignment transfer the value (relaxed load + store), so stats
/// structs containing these remain value types: `ViewStats s = view.stats()`
/// takes an independently-consistent per-field snapshot.
class RelaxedU64 {
 public:
  RelaxedU64() = default;
  RelaxedU64(uint64_t v) : v_(v) {}  // NOLINT: implicit by design
  RelaxedU64(const RelaxedU64& o) : v_(o.load()) {}
  RelaxedU64& operator=(const RelaxedU64& o) {
    store(o.load());
    return *this;
  }
  RelaxedU64& operator=(uint64_t v) {
    store(v);
    return *this;
  }
  operator uint64_t() const { return load(); }  // NOLINT: implicit by design
  RelaxedU64& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator-=(uint64_t d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator++() { return *this += 1; }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(uint64_t v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief A double accumulator cell with the same copy/relaxed semantics as
/// RelaxedU64. `+=` is a CAS loop (no atomic<double>::fetch_add pre-C++20).
class RelaxedF64 {
 public:
  RelaxedF64() = default;
  RelaxedF64(double v) : v_(v) {}  // NOLINT: implicit by design
  RelaxedF64(const RelaxedF64& o) : v_(o.load()) {}
  RelaxedF64& operator=(const RelaxedF64& o) {
    store(o.load());
    return *this;
  }
  RelaxedF64& operator=(double v) {
    store(v);
    return *this;
  }
  operator double() const { return load(); }  // NOLINT: implicit by design
  RelaxedF64& operator+=(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
    return *this;
  }
  double load() const { return v_.load(std::memory_order_relaxed); }
  void store(double v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

enum class SampleKind : uint8_t {
  kCounter,        // monotonically increasing
  kGauge,          // instantaneous level
  kHistCount,      // histogram observation count (monotonic)
  kHistSum,        // histogram observation sum (monotonic)
  kHistQuantile,   // interpolated quantile (gauge-like)
};

const char* SampleKindName(SampleKind k);

struct Sample {
  std::string name;    // Prometheus-safe family name, e.g. "hazy_wal_syncs_total"
  std::string labels;  // label body without braces; "" for none
  SampleKind kind = SampleKind::kCounter;
  double value = 0;
};

/// \brief Append-only sample sink handed to collectors.
class SampleList {
 public:
  void Counter(std::string name, std::string labels, double value) {
    samples.push_back({std::move(name), std::move(labels),
                       SampleKind::kCounter, value});
  }
  void Gauge(std::string name, std::string labels, double value) {
    samples.push_back({std::move(name), std::move(labels), SampleKind::kGauge,
                       value});
  }
  std::vector<Sample> samples;
};

/// \brief Registry-owned monotonic counter.
class Counter {
 public:
  void Add(uint64_t d) { v_ += d; }
  void Increment() { v_ += 1; }
  uint64_t value() const { return v_.load(); }

 private:
  RelaxedU64 v_;
};

/// \brief Registry-owned instantaneous gauge (signed).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Log-bucketed (base-2) histogram for non-negative values.
///
/// Bucket 0 holds [0,1); bucket i (i>=1) holds [2^(i-1), 2^i). 64 buckets
/// cover the full uint64 range, so microsecond latencies up to ~584 000
/// years never saturate. Observations are relaxed-atomic bumps — concurrent
/// writers race only on the accuracy of `sum` vs `count` skew, never on
/// bucket integrity.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(double value);

  uint64_t count() const { return count_.load(); }
  double sum() const { return sum_.load(); }

  /// Interpolated quantile (q in [0,1]) assuming uniform distribution
  /// within a bucket. Returns 0 when empty.
  double Quantile(double q) const;

  /// Folds `other`'s buckets/count/sum into this one (relaxed; accurate when
  /// `other` is quiescent).
  void MergeFrom(const Histogram& other);

  /// Per-bucket counts (relaxed loads).
  std::array<uint64_t, kNumBuckets> BucketCounts() const;

  /// Index of the bucket that holds `value` (exposed for tests).
  static int BucketIndex(double value);

  /// Inclusive upper bound of bucket `i` ( = 2^i - epsilon conceptually;
  /// returned as 2^i, the exclusive bound, except bucket 0 which returns 1).
  static double BucketUpperBound(int i);

 private:
  std::array<RelaxedU64, kNumBuckets> buckets_;
  RelaxedU64 count_;
  RelaxedF64 sum_;
};

/// \brief The process-wide registry. All methods are thread-safe.
class Registry {
 public:
  static Registry& Global();

  /// Returns the named instrument, creating it on first use. The pointer is
  /// stable for the life of the process. (name, labels) identifies the cell;
  /// `name` alone identifies the family.
  Counter* GetCounter(const std::string& name, const std::string& labels = "")
      EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& labels = "")
      EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "") EXCLUDES(mu_);

  using CollectorFn = std::function<void(SampleList*)>;

  /// Registers `fn` to be polled at snapshot time; returns a handle for
  /// Unregister. Collector callbacks must not call back into the registry.
  uint64_t RegisterCollector(CollectorFn fn) EXCLUDES(mu_);

  /// Removes the collector, folding its final kCounter samples into
  /// persistent retired totals so lifetime counts survive subsystem
  /// teardown.
  void UnregisterCollector(uint64_t id) EXCLUDES(mu_);

  /// One coherent-enough view of everything: native instruments (histograms
  /// expanded into _count/_sum/quantile samples), live collectors, and
  /// retired totals (merged into same-keyed counter samples). Sorted by
  /// (name, labels).
  std::vector<Sample> Snapshot() const EXCLUDES(mu_);

  /// Prometheus text exposition format 0.0.4. Histograms render as
  /// summaries with quantile labels.
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// Test hook: zeroes native instrument values and drops retired totals.
  /// Instrument pointers stay valid; registered collectors are untouched.
  void ResetValuesForTest() EXCLUDES(mu_);

 private:
  Registry() = default;

  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
  std::map<uint64_t, CollectorFn> collectors_ GUARDED_BY(mu_);
  std::map<Key, double> retired_counters_ GUARDED_BY(mu_);
  uint64_t next_collector_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace hazy::obs

#endif  // HAZY_OBS_METRICS_H_
