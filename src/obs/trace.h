// Per-statement tracing: a TraceContext records a tree of timed spans on
// the statement thread plus thread-safe per-kind event aggregates that
// parallel workers (scan pipeline, buffer pool misses under a worker) feed.
//
// Propagation is via a thread-local current-trace pointer. Installing costs
// a pointer swap; every instrumentation point first checks the pointer and
// is a no-op when tracing is off, so benches driving the engine without a
// trace installed pay only a thread-local load per probe.
//
// Threading contract:
//   - OpenSpan/CloseSpan: statement thread only (spans form a stack).
//   - AddEvent: any thread (relaxed atomic aggregates per kind).
//   - ScopedTraceInstall may be used on worker threads to propagate the
//     parent statement's context into ParallelFor bodies; those workers
//     must then only AddEvent, never open spans.
//
// Closing a span also feeds the process-wide registry histogram for its
// kind (`hazy_span_us{span="..."}`), so per-span latency quantiles are
// exported without a second instrumentation pass. Histograms register
// lazily on first observation: a span family that appears in SHOW METRICS
// has by construction been exercised (keeps the CI dead-metric lint exact).

#ifndef HAZY_OBS_TRACE_H_
#define HAZY_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace hazy::obs {

enum class SpanKind : uint8_t {
  kStatement = 0,   // whole statement, root
  kParse,           // SQL text -> AST
  kGateWait,        // waiting on the statement gate (shared or exclusive)
  kExecute,         // statement body after parse
  kTriggerDrain,    // draining queued view maintenance triggers
  kLazyScan,        // lazy on-demand (re)scoring scan
  kRelabelSweep,    // eager relabel sweep between water lines
  kWindowStep,      // per-batch incremental window step (classify/relabel rids)
  kWalAppend,       // WAL record append (buffered)
  kWalFsync,        // WAL fdatasync
  kPoolMiss,        // buffer-pool miss: page read from pager
  kPoolEvict,       // buffer-pool eviction write-back on the foreground path
  kCheckpoint,      // whole checkpoint
  kCheckpointCommit,  // checkpoint exclusive commit section (gate held)
  kNumKinds
};

constexpr int kNumSpanKinds = static_cast<int>(SpanKind::kNumKinds);

/// Stable dotted name, e.g. "wal.fsync"; used in trace rows and as the
/// `span` label on the registry histogram family.
const char* SpanKindName(SpanKind k);

/// One row of a flattened trace, ready for a ResultSet or pretty-printer.
/// Aggregated events render as depth-1 rows under the root.
struct TraceRow {
  int depth = 0;
  std::string span;
  uint64_t count = 1;
  double total_ms = 0;
};

class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Resets to empty, keeping allocations.
  void Clear();

  bool empty() const { return spans_.empty(); }

  /// Opens a span as a child of the innermost open span; returns its index.
  int OpenSpan(SpanKind kind);

  /// Closes the span (must be the innermost open one) and feeds the
  /// registry histogram for its kind.
  void CloseSpan(int index);

  /// Thread-safe: folds one timed event into the per-kind aggregate.
  void AddEvent(SpanKind kind, uint64_t duration_ns);

  /// Wall-clock duration of the root span (ns); 0 if none closed yet.
  uint64_t root_duration_ns() const;

  /// Depth-first span rows followed by aggregate-event rows at depth 1.
  std::vector<TraceRow> Flatten() const;

  /// Human-readable indented tree (for the slow-statement log and shell).
  std::string ToTreeString() const;

  /// Sum of `duration_ns` over aggregated events of `kind` (test hook).
  uint64_t EventTotalNs(SpanKind kind) const;
  uint64_t EventCount(SpanKind kind) const;

 private:
  struct SpanNode {
    SpanKind kind;
    int32_t parent;  // -1 for root
    uint64_t start_ns;
    uint64_t duration_ns = 0;
  };
  struct EventAgg {
    RelaxedU64 count;
    RelaxedU64 total_ns;
  };

  std::vector<SpanNode> spans_;
  std::vector<int> open_stack_;
  std::array<EventAgg, kNumSpanKinds> events_;
};

/// The current thread's active trace, or nullptr when tracing is off.
TraceContext* CurrentTrace();

/// Installs `trace` as the current thread's trace for the scope (nullptr
/// to disable tracing within the scope). Restores the previous pointer.
class ScopedTraceInstall {
 public:
  explicit ScopedTraceInstall(TraceContext* trace);
  ~ScopedTraceInstall();
  ScopedTraceInstall(const ScopedTraceInstall&) = delete;
  ScopedTraceInstall& operator=(const ScopedTraceInstall&) = delete;

 private:
  TraceContext* prev_;
};

/// RAII span on the current trace; no-op when tracing is off.
class TraceScope {
 public:
  explicit TraceScope(SpanKind kind) : trace_(CurrentTrace()) {
    if (trace_ != nullptr) index_ = trace_->OpenSpan(kind);
  }
  ~TraceScope() {
    if (trace_ != nullptr) trace_->CloseSpan(index_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* trace_;
  int index_ = -1;
};

/// RAII timed event on the current trace (thread-safe, for code reachable
/// from parallel workers or internally-locked subsystems); no-op when
/// tracing is off.
class TraceEventTimer {
 public:
  explicit TraceEventTimer(SpanKind kind)
      : trace_(CurrentTrace()), kind_(kind) {
    if (trace_ != nullptr) start_ns_ = NowNanos();
  }
  ~TraceEventTimer() {
    if (trace_ != nullptr) {
      trace_->AddEvent(kind_, static_cast<uint64_t>(NowNanos() - start_ns_));
    }
  }
  TraceEventTimer(const TraceEventTimer&) = delete;
  TraceEventTimer& operator=(const TraceEventTimer&) = delete;

 private:
  TraceContext* trace_;
  SpanKind kind_;
  int64_t start_ns_ = 0;
};

}  // namespace hazy::obs

#endif  // HAZY_OBS_TRACE_H_
