// Bridges the existing per-subsystem stats structs (WalStats,
// BufferPoolStats, PagerStats, ViewStats) into the metrics registry as
// collector callbacks. The structs stay the source of truth — tests and
// benches keep reading them directly — and the registry polls them at
// snapshot time. Each Register* returns the collector handle; the owner
// unregisters it before destroying the subsystem (the registry folds the
// final counter values into retired totals, so lifetime counts survive).

#ifndef HAZY_OBS_STATS_COLLECTORS_H_
#define HAZY_OBS_STATS_COLLECTORS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace hazy::core {
class ClassificationView;
}  // namespace hazy::core
namespace hazy::storage {
class BufferPool;
class Pager;
class Wal;
}  // namespace hazy::storage

namespace hazy::obs {

// `labels` is a preformatted Prometheus label body (no braces), e.g.
// `db="spam.hz"`, attached to every sample the collector emits.

uint64_t RegisterWalStats(const storage::Wal* wal, std::string labels);
uint64_t RegisterBufferPoolStats(const storage::BufferPool* pool,
                                 std::string labels);
uint64_t RegisterPagerStats(const storage::Pager* pager, std::string labels);
/// `view` is a provider, not a pointer: a delete/relabel retrains the model
/// from scratch (paper footnote 2), which REPLACES the underlying view
/// object — the provider re-resolves it at every poll (and at the final
/// fold inside UnregisterCollector), so the collector never holds a pointer
/// the rebuild invalidated. May return null (view being torn down): the
/// collector emits nothing that poll.
uint64_t RegisterViewStats(
    std::function<const core::ClassificationView*()> view, std::string labels);

void UnregisterStats(uint64_t id);

}  // namespace hazy::obs

#endif  // HAZY_OBS_STATS_COLLECTORS_H_
