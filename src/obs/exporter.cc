#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "obs/metrics.h"

namespace hazy::obs {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // scraper went away; nothing to do about it
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

PrometheusExporter::~PrometheusExporter() { Stop(); }

Status PrometheusExporter::Start(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad metrics address '%s'", host.c_str()));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  started_ = true;
  return Status::OK();
}

void PrometheusExporter::Stop() {
  if (!started_) return;
  started_ = false;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void PrometheusExporter::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_relaxed)) return;
      continue;  // transient (EMFILE, ECONNABORTED): keep serving
    }
    // A stalled scraper must not wedge Stop() behind a blocked recv.
    timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Read whatever request line the scraper sent (one recv is enough for
    // any real `GET /metrics HTTP/1.1` request; the content is ignored).
    char buf[4096];
    const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
    if (n > 0) {
      const std::string body = Registry::Global().RenderPrometheus();
      std::string response = StrFormat(
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: %zu\r\n"
          "Connection: close\r\n"
          "\r\n",
          body.size());
      response += body;
      SendAll(conn, response);
    }
    ::close(conn);
  }
}

}  // namespace hazy::obs
