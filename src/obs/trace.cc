#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "common/logging.h"

namespace hazy::obs {

namespace {

thread_local TraceContext* t_current_trace = nullptr;

// Lazily-resolved registry histogram per span kind ("hazy_span_us",
// span="<name>", values in microseconds). Resolved on first close/event of
// that kind so a registered family implies an exercised one.
Histogram* SpanHistogram(SpanKind kind) {
  static std::array<std::atomic<Histogram*>, kNumSpanKinds> cache{};
  std::atomic<Histogram*>& slot = cache[static_cast<int>(kind)];
  Histogram* h = slot.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = Registry::Global().GetHistogram(
        "hazy_span_us",
        std::string("span=\"") + SpanKindName(kind) + "\"");
    slot.store(h, std::memory_order_release);
  }
  return h;
}

}  // namespace

const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kStatement:
      return "statement";
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kGateWait:
      return "gate.wait";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kTriggerDrain:
      return "trigger.drain";
    case SpanKind::kLazyScan:
      return "view.lazy_scan";
    case SpanKind::kRelabelSweep:
      return "view.relabel_sweep";
    case SpanKind::kWindowStep:
      return "view.window_step";
    case SpanKind::kWalAppend:
      return "wal.append";
    case SpanKind::kWalFsync:
      return "wal.fsync";
    case SpanKind::kPoolMiss:
      return "pool.miss";
    case SpanKind::kPoolEvict:
      return "pool.evict";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kCheckpointCommit:
      return "checkpoint.commit";
    case SpanKind::kNumKinds:
      break;
  }
  return "unknown";
}

void TraceContext::Clear() {
  spans_.clear();
  open_stack_.clear();
  for (EventAgg& agg : events_) {
    agg.count.store(0);
    agg.total_ns.store(0);
  }
}

int TraceContext::OpenSpan(SpanKind kind) {
  SpanNode node;
  node.kind = kind;
  node.parent = open_stack_.empty() ? -1 : open_stack_.back();
  node.start_ns = static_cast<uint64_t>(NowNanos());
  int index = static_cast<int>(spans_.size());
  spans_.push_back(node);
  open_stack_.push_back(index);
  return index;
}

void TraceContext::CloseSpan(int index) {
  HAZY_DCHECK(!open_stack_.empty() && open_stack_.back() == index);
  SpanNode& node = spans_[index];
  node.duration_ns = static_cast<uint64_t>(NowNanos()) - node.start_ns;
  open_stack_.pop_back();
  SpanHistogram(node.kind)->Observe(static_cast<double>(node.duration_ns) /
                                    1000.0);
}

void TraceContext::AddEvent(SpanKind kind, uint64_t duration_ns) {
  EventAgg& agg = events_[static_cast<int>(kind)];
  agg.count += 1;
  agg.total_ns += duration_ns;
  SpanHistogram(kind)->Observe(static_cast<double>(duration_ns) / 1000.0);
}

uint64_t TraceContext::root_duration_ns() const {
  return spans_.empty() ? 0 : spans_[0].duration_ns;
}

uint64_t TraceContext::EventTotalNs(SpanKind kind) const {
  return events_[static_cast<int>(kind)].total_ns.load();
}

uint64_t TraceContext::EventCount(SpanKind kind) const {
  return events_[static_cast<int>(kind)].count.load();
}

std::vector<TraceRow> TraceContext::Flatten() const {
  std::vector<TraceRow> rows;
  rows.reserve(spans_.size() + 4);
  // Depth-first over the span tree. Spans are stored in open order, so a
  // child always follows its parent; a simple recursion over child lists
  // keeps sibling order.
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[spans_[i].parent].push_back(static_cast<int>(i));
    }
  }
  struct Walker {
    const std::vector<SpanNode>& spans;
    const std::vector<std::vector<int>>& children;
    std::vector<TraceRow>& rows;
    void Walk(int index, int depth) {
      const SpanNode& node = spans[index];
      TraceRow row;
      row.depth = depth;
      row.span = SpanKindName(node.kind);
      row.total_ms = static_cast<double>(node.duration_ns) / 1e6;
      rows.push_back(std::move(row));
      for (int child : children[index]) Walk(child, depth + 1);
    }
  };
  Walker walker{spans_, children, rows};
  for (int root : roots) walker.Walk(root, 0);
  for (int k = 0; k < kNumSpanKinds; ++k) {
    uint64_t count = events_[k].count.load();
    if (count == 0) continue;
    TraceRow row;
    row.depth = 1;
    row.span = SpanKindName(static_cast<SpanKind>(k));
    row.count = count;
    row.total_ms = static_cast<double>(events_[k].total_ns.load()) / 1e6;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string TraceContext::ToTreeString() const {
  std::string out;
  for (const TraceRow& row : Flatten()) {
    out.append(static_cast<size_t>(row.depth) * 2, ' ');
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s  %.3f ms", row.span.c_str(),
                  row.total_ms);
    out += buf;
    if (row.count > 1) {
      std::snprintf(buf, sizeof(buf), "  (x%llu)",
                    static_cast<unsigned long long>(row.count));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

TraceContext* CurrentTrace() { return t_current_trace; }

ScopedTraceInstall::ScopedTraceInstall(TraceContext* trace)
    : prev_(t_current_trace) {
  t_current_trace = trace;
}

ScopedTraceInstall::~ScopedTraceInstall() { t_current_trace = prev_; }

}  // namespace hazy::obs
