// A minimal Prometheus scrape endpoint: one background thread, a blocking
// accept loop over a listening socket, one request per connection. Every
// HTTP request — the path is not even inspected — is answered with the
// registry's text exposition (format 0.0.4). That is deliberately crude and
// deliberately dependency-free: a scraper issues `GET /metrics` every few
// seconds; it does not need keep-alive, TLS, or routing.

#ifndef HAZY_OBS_EXPORTER_H_
#define HAZY_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"

namespace hazy::obs {

/// \brief Serves Registry::Global().RenderPrometheus() over HTTP.
///
/// Start() binds and spawns the serving thread; Stop() (or the destructor)
/// shuts the listener down and joins. One exporter per process is typical
/// but nothing enforces it — each instance owns its own socket.
class PrometheusExporter {
 public:
  PrometheusExporter() = default;
  ~PrometheusExporter();

  PrometheusExporter(const PrometheusExporter&) = delete;
  PrometheusExporter& operator=(const PrometheusExporter&) = delete;

  /// Binds `host:port` (port 0 = ephemeral, read back via port()) and
  /// starts answering scrapes. Fails on bind/listen errors.
  Status Start(const std::string& host, uint16_t port);

  /// Closes the listener and joins the serving thread. Idempotent.
  void Stop();

  /// Port actually bound (valid after Start()).
  uint16_t port() const { return port_; }

 private:
  void Serve();

  int listen_fd_ = -1;
  /// Stop() raises this, then shutdown()s the listener so the blocked
  /// accept() in Serve() returns and observes it.
  std::atomic<bool> stop_{false};
  std::thread thread_;
  uint16_t port_ = 0;
  bool started_ = false;
};

}  // namespace hazy::obs

#endif  // HAZY_OBS_EXPORTER_H_
