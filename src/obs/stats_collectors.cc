#include "obs/stats_collectors.h"

#include <utility>

#include "core/classifier_view.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace hazy::obs {

namespace {

double Load(const std::atomic<uint64_t>& v) {
  return static_cast<double>(v.load(std::memory_order_relaxed));
}

}  // namespace

uint64_t RegisterWalStats(const storage::Wal* wal, std::string labels) {
  return Registry::Global().RegisterCollector(
      [wal, labels = std::move(labels)](SampleList* out) {
        const storage::WalStats& s = wal->stats();
        out->Counter("hazy_wal_records_total", labels, Load(s.records));
        out->Counter("hazy_wal_before_images_total", labels,
                     Load(s.before_images));
        out->Counter("hazy_wal_commits_total", labels, Load(s.commits));
        out->Counter("hazy_wal_syncs_total", labels, Load(s.syncs));
        out->Counter("hazy_wal_bytes_total", labels, Load(s.bytes));
      });
}

uint64_t RegisterBufferPoolStats(const storage::BufferPool* pool,
                                 std::string labels) {
  return Registry::Global().RegisterCollector(
      [pool, labels = std::move(labels)](SampleList* out) {
        // Independently-consistent per-field snapshot (see BufferPoolStats).
        storage::BufferPoolStatsSnapshot s = pool->stats().Snapshot();
        out->Counter("hazy_pool_hits_total", labels,
                     static_cast<double>(s.hits));
        out->Counter("hazy_pool_misses_total", labels,
                     static_cast<double>(s.misses));
        out->Counter("hazy_pool_evictions_total", labels,
                     static_cast<double>(s.evictions));
        out->Counter("hazy_pool_dirty_writebacks_total", labels,
                     static_cast<double>(s.dirty_writebacks));
        out->Gauge("hazy_pool_hit_rate", labels, s.HitRate());
      });
}

uint64_t RegisterPagerStats(const storage::Pager* pager, std::string labels) {
  return Registry::Global().RegisterCollector(
      [pager, labels = std::move(labels)](SampleList* out) {
        const storage::PagerStats& s = pager->stats();
        out->Counter("hazy_pager_reads_total", labels, Load(s.reads));
        out->Counter("hazy_pager_writes_total", labels, Load(s.writes));
        out->Counter("hazy_pager_allocs_total", labels, Load(s.allocs));
      });
}

uint64_t RegisterViewStats(
    std::function<const core::ClassificationView*()> view, std::string labels) {
  return Registry::Global().RegisterCollector(
      [view = std::move(view), labels = std::move(labels)](SampleList* out) {
        const core::ClassificationView* v = view();
        if (v == nullptr) return;
        const core::ViewStats& s = v->stats();
        out->Counter("hazy_view_updates_total", labels, s.updates.load());
        out->Counter("hazy_view_batches_total", labels, s.batches.load());
        out->Counter("hazy_view_reorgs_total", labels, s.reorgs.load());
        out->Counter("hazy_view_incremental_steps_total", labels,
                     s.incremental_steps.load());
        out->Counter("hazy_view_window_tuples_total", labels,
                     s.window_tuples.load());
        out->Counter("hazy_view_tuples_scanned_total", labels,
                     s.tuples_scanned.load());
        out->Counter("hazy_view_label_flips_total", labels,
                     s.label_flips.load());
        out->Counter("hazy_view_single_reads_total", labels,
                     s.single_reads.load());
        out->Counter("hazy_view_reads_by_bounds_total", labels,
                     s.reads_by_bounds.load());
        out->Counter("hazy_view_reads_by_buffer_total", labels,
                     s.reads_by_buffer.load());
        out->Counter("hazy_view_reads_from_store_total", labels,
                     s.reads_from_store.load());
        out->Counter("hazy_view_all_members_total", labels,
                     s.all_members_queries.load());
        out->Counter("hazy_view_update_seconds_total", labels,
                     s.total_update_seconds.load());
        out->Counter("hazy_view_reorg_seconds_total", labels,
                     s.total_reorg_seconds.load());
        out->Gauge("hazy_view_last_reorg_cost", labels,
                   s.last_reorg_cost.load());
        double low = 0, high = 0;
        if (v->WaterLines(&low, &high)) {
          out->Gauge("hazy_view_water_low", labels, low);
          out->Gauge("hazy_view_water_high", labels, high);
        }
      });
}

void UnregisterStats(uint64_t id) {
  Registry::Global().UnregisterCollector(id);
}

}  // namespace hazy::obs
